"""Adaptive freeze planning: choose ``m`` and the hotspot set per instance.

The solver historically took ``num_frozen`` as a fixed argument; the
paper's own analysis (Sec. 3.7, Fig. 9) shows the right depth depends on
the problem and the budget. :class:`FreezePlanner` combines the three
signals the repo already computes —

* the transpile cost model (:func:`repro.core.costs.cost_curve`): CX count
  per sub-circuit for growing ``m`` (device runs),
* the trade-off knee (:func:`repro.analysis.tradeoff.knee_under_budget`):
  the last ``m`` whose marginal improvement is still worth its cost,
* the hotspot policies (:func:`repro.core.hotspots.select_hotspots`) with
  a dropped-edge marginal-gain criterion (device-free runs),

— into an explicit, inspectable :class:`FreezePlan` that records *why*
each choice was made. A plan is a value object: hand it to
:class:`repro.core.solver.FrozenQubitsSolver` (or ``solve_many``) and the
solve follows it exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.exceptions import SolverError
from repro.ising.hamiltonian import IsingHamiltonian
from repro.ising.symmetry import has_spin_flip_symmetry
from repro.planning.budget import ExecutionBudget

if TYPE_CHECKING:
    from repro.core.costs import CostReport
    from repro.devices.device import Device


@dataclass(frozen=True)
class FreezePlan:
    """An explicit, inspectable freezing decision.

    Replaces the implicit ``num_frozen`` int: the plan pins the hotspot
    set, the quantum fan-out cap, and the warm-start choice, plus the
    evidence they were derived from.

    Attributes:
        num_frozen: Chosen freeze depth ``m``.
        hotspots: The frozen qubits, in selection order.
        max_executed: Cap on quantum-executed sub-problems (the budgeted
            top-k); ``None`` executes every non-mirror cell.
        warm_start: Seed sibling optimizers from a trained representative.
        prune_symmetric: Whether the Sec. 3.7.2 mirror pruning applies.
        policy: Hotspot policy the selection used.
        budget: The budget the plan was made under (``None`` = unlimited).
        cost_reports: Transpile cost curve consulted (device plans only).
        notes: Human-readable rationale, one decision per line.
    """

    num_frozen: int
    hotspots: tuple[int, ...]
    max_executed: "int | None" = None
    warm_start: bool = False
    prune_symmetric: bool = True
    policy: str = "degree"
    budget: "ExecutionBudget | None" = None
    cost_reports: "tuple[CostReport, ...]" = ()
    notes: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.num_frozen != len(self.hotspots):
            raise SolverError(
                f"plan is inconsistent: num_frozen={self.num_frozen} but "
                f"{len(self.hotspots)} hotspots"
            )
        if self.max_executed is not None and self.max_executed < 1:
            raise SolverError(
                f"max_executed must be >= 1, got {self.max_executed}"
            )

    def describe(self) -> str:
        """The rationale as one printable block."""
        header = (
            f"FreezePlan: m={self.num_frozen}, hotspots={list(self.hotspots)}, "
            f"max_executed={self.max_executed}, warm_start={self.warm_start}"
        )
        return "\n".join([header, *(f"  - {note}" for note in self.notes)])


class FreezePlanner:
    """Choose a :class:`FreezePlan` for a problem under a budget.

    Args:
        hotspot_policy: Selection policy (see :mod:`repro.core.hotspots`).
        max_frozen: Never freeze more than this many qubits.
        plateau_threshold: Marginal-improvement floor, as a fraction of the
            baseline metric, below which extra freezing is not worth its
            exponential cost (the paper's Sec. 5.1.3 criterion).
        warm_start: Enable cross-sibling warm starts in produced plans
            whenever the fan-out has at least two executed cells.
        prune_symmetric: Allow mirror pruning on symmetric parents.
        shots: Per-circuit shots assumed when a shot budget must be turned
            into a circuit cap.
        prune_stretch: How far past the budget the fan-out may grow before
            the depth is clamped: a quality-chosen ``m`` is kept as long
            as its non-mirror cell count is at most ``prune_stretch`` times
            the circuit cap — the overflow runs as a ranked top-k with
            classical fallback for the rest. ``1`` disables overflow (the
            depth must fit the budget exactly).
    """

    def __init__(
        self,
        hotspot_policy: str = "degree",
        max_frozen: int = 10,
        plateau_threshold: float = 0.05,
        warm_start: bool = True,
        prune_symmetric: bool = True,
        shots: int = 4096,
        prune_stretch: int = 4,
    ) -> None:
        if max_frozen < 0:
            raise SolverError(f"max_frozen must be >= 0, got {max_frozen}")
        if plateau_threshold < 0:
            raise SolverError(
                f"plateau_threshold must be >= 0, got {plateau_threshold}"
            )
        if prune_stretch < 1:
            raise SolverError(
                f"prune_stretch must be >= 1, got {prune_stretch}"
            )
        self._policy = hotspot_policy
        self._max_frozen = max_frozen
        self._plateau = plateau_threshold
        self._warm_start = warm_start
        self._prune = prune_symmetric
        self._shots = shots
        self._stretch = prune_stretch

    def plan(
        self,
        hamiltonian: IsingHamiltonian,
        device: "Device | None" = None,
        budget: "ExecutionBudget | None" = None,
        seed: "int | None" = None,
    ) -> FreezePlan:
        """Produce a freeze plan for one problem.

        With a device, the transpile cost model drives the depth choice
        (CX count per sub-circuit, Sec. 5.1.3); without one, the marginal
        dropped-edge fraction of each successive hotspot stands in. Either
        way the budget caps both the depth and the executed fan-out.

        Args:
            hamiltonian: The problem.
            device: Optional target device (enables the cost model).
            budget: Resource envelope; ``None`` = unlimited.
            seed: RNG seed for stochastic hotspot policies.
        """
        from repro.core.costs import quantum_cost
        from repro.core.hotspots import select_hotspots
        from repro.planning.budget import estimated_seconds_per_circuit

        notes: list[str] = []
        symmetric = self._prune and has_spin_flip_symmetry(hamiltonian)
        cap = None if budget is None else budget.circuit_cap(
            shots_per_circuit=self._shots,
            seconds_per_circuit=estimated_seconds_per_circuit(
                hamiltonian, self._shots
            ),
        )
        if cap is not None:
            notes.append(f"budget caps the fan-out at {cap} circuits")

        upper = min(self._max_frozen, max(hamiltonian.num_qubits - 1, 0))
        hotspots = select_hotspots(
            hamiltonian, upper, policy=self._policy, device=device, seed=seed
        )
        reports: tuple = ()
        if device is not None and upper > 0:
            m, reports, why = self._depth_from_cost_model(
                hamiltonian, device, upper, hotspots
            )
        else:
            m, why = self._depth_from_degrees(hamiltonian, hotspots, upper)
        notes.extend(why)

        # The budget bounds the depth too, with slack: a deeper freeze
        # (smaller, higher-fidelity circuits) is worth keeping while the
        # fan-out overflows the cap by at most ``prune_stretch`` — the
        # overflow runs as a ranked top-k and the rest falls back to
        # classical coverage. Beyond that the solve would be mostly
        # classical, so the depth is clamped instead.
        if cap is not None:
            chosen = m
            while m > 0 and quantum_cost(m, pruned=symmetric) > cap * self._stretch:
                m -= 1
            if m != chosen:
                notes.append(
                    f"depth clamped from m={chosen} to m={m}: the fan-out may "
                    f"overflow the {cap}-circuit cap by at most {self._stretch}x"
                )

        executed = quantum_cost(m, pruned=symmetric)
        max_executed = None
        if cap is not None and cap < executed:
            max_executed = cap
            notes.append(
                f"executing top-{cap} of {executed} cells; the rest are "
                "covered classically"
            )
        warm = self._warm_start and executed >= 2 and (
            max_executed is None or max_executed >= 2
        )
        if warm:
            notes.append("warm-starting siblings from one trained representative")
        return FreezePlan(
            num_frozen=m,
            hotspots=tuple(hotspots[:m]),
            max_executed=max_executed,
            warm_start=warm,
            prune_symmetric=self._prune,
            policy=self._policy,
            budget=budget,
            cost_reports=reports,
            notes=tuple(notes),
        )

    def _depth_from_cost_model(
        self,
        hamiltonian: IsingHamiltonian,
        device: "Device",
        upper: int,
        hotspots: "list[int]",
    ) -> tuple:
        """Pick m from the transpiled CX curve's diminishing-returns knee.

        The curve is built over the *already selected* hotspot ordering so
        the depth choice matches the freezing the plan pins (and so
        device- or seed-dependent policies don't get re-run blind).
        """
        from repro.analysis.tradeoff import knee_under_budget, tradeoff_curve
        from repro.core.costs import cost_curve

        reports = cost_curve(
            hamiltonian,
            device,
            max_frozen=upper,
            policy=self._policy,
            hotspots=hotspots,
        )
        curve = tradeoff_curve([max(r.cx_count, 1) for r in reports])
        m = knee_under_budget(curve, threshold=self._plateau)
        why = [
            f"cost model: CX {reports[0].cx_count} at m=0 -> "
            f"{reports[min(m, len(reports) - 1)].cx_count} at m={m} "
            f"(plateau threshold {self._plateau})"
        ]
        return m, tuple(reports), why

    def _depth_from_degrees(
        self,
        hamiltonian: IsingHamiltonian,
        hotspots: "list[int]",
        upper: int,
    ) -> tuple:
        """Device-free depth choice: marginal dropped-edge fraction.

        Freezing a hotspot removes its incident quadratic terms; keep
        freezing while each successive hotspot still removes at least
        ``plateau_threshold`` of the original terms.
        """
        from repro.core.hotspots import dropped_edges

        total = max(hamiltonian.num_terms, 1)
        m = 0
        for depth in range(1, upper + 1):
            gain = (
                dropped_edges(hamiltonian, hotspots[:depth])
                - dropped_edges(hamiltonian, hotspots[: depth - 1])
            ) / total
            if gain < self._plateau:
                break
            m = depth
        why = [
            f"degree heuristic: {m} hotspot(s) each drop >= "
            f"{self._plateau:.0%} of the {hamiltonian.num_terms} couplings"
        ]
        return m, why

def plan_freeze(
    hamiltonian: IsingHamiltonian,
    device: "Device | None" = None,
    budget: "ExecutionBudget | None" = None,
    **kwargs,
) -> FreezePlan:
    """One-call convenience wrapper: ``FreezePlanner(**kwargs).plan(...)``."""
    return FreezePlanner(**kwargs).plan(hamiltonian, device=device, budget=budget)
