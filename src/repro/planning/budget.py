"""Execution budgets: the resource envelope a freeze plan must fit.

The paper's trade-off analysis (Sec. 3.4, Fig. 9) prices freezing ``m``
qubits at ``2**m`` circuit executions; what the *right* ``m`` is depends on
how many circuits, shots, and how much wall-clock the caller can actually
afford. :class:`ExecutionBudget` expresses that envelope explicitly so the
planner (and the solver's fan-out pruning) can reason about it instead of
taking a fixed ``num_frozen`` on faith.

All limits are optional — an unset limit never constrains — and combine
conservatively: the binding cap is the *tightest* of the circuit, shot, and
wall-clock limits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SolverError


@dataclass(frozen=True)
class ExecutionBudget:
    """Resource envelope for one FrozenQubits solve.

    Attributes:
        max_circuits: Hard cap on distinct quantum circuit executions
            (trained sub-problems). ``None`` = unlimited.
        max_shots: Cap on total measurement shots across all executed
            circuits; divided by the per-circuit shot count it becomes a
            circuit cap. ``None`` = unlimited.
        max_seconds: Wall-clock proxy: divided by an estimated per-circuit
            cost (supplied by the caller, e.g. from the transpiled CX
            count) it becomes a circuit cap. ``None`` = unlimited.
    """

    max_circuits: "int | None" = None
    max_shots: "int | None" = None
    max_seconds: "float | None" = None

    def __post_init__(self) -> None:
        if self.max_circuits is not None and self.max_circuits < 1:
            raise SolverError(
                f"max_circuits must be >= 1, got {self.max_circuits}"
            )
        if self.max_shots is not None and self.max_shots < 1:
            raise SolverError(f"max_shots must be >= 1, got {self.max_shots}")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise SolverError(
                f"max_seconds must be positive, got {self.max_seconds}"
            )

    @property
    def unlimited(self) -> bool:
        """True when no limit is set (the budget never binds)."""
        return (
            self.max_circuits is None
            and self.max_shots is None
            and self.max_seconds is None
        )

    def circuit_cap(
        self,
        shots_per_circuit: "int | None" = None,
        seconds_per_circuit: "float | None" = None,
    ) -> "int | None":
        """Tightest circuit-count cap implied by the set limits.

        Args:
            shots_per_circuit: Shots each executed circuit will consume;
                required for ``max_shots`` to bind.
            seconds_per_circuit: Estimated wall-clock per circuit (a proxy,
                e.g. proportional to CX count x shots); required for
                ``max_seconds`` to bind.

        Returns:
            The cap (always >= 1 — a budget can prune, never abort), or
            ``None`` when no set limit translates into a circuit count.
        """
        caps: list[int] = []
        if self.max_circuits is not None:
            caps.append(self.max_circuits)
        if self.max_shots is not None and shots_per_circuit:
            caps.append(self.max_shots // shots_per_circuit)
        if self.max_seconds is not None and seconds_per_circuit:
            caps.append(int(self.max_seconds / seconds_per_circuit))
        if not caps:
            return None
        return max(min(caps), 1)


def estimated_seconds_per_circuit(hamiltonian, shots: int) -> float:
    """Crude wall-clock proxy for one executed circuit of a problem.

    Training dominates; its cost scales with the term count times the shot
    count. The constant is calibrated to CI-scale simulators — this is a
    *relative* knob for budget math, not a prediction. Shared by the
    planner and the solver so a ``max_seconds`` budget binds identically
    through either entry point.
    """
    return 1e-7 * shots * max(hamiltonian.num_terms, 1)
