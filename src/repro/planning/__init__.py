"""Adaptive freeze planning: budgets, plans, and fan-out triage.

FrozenQubits pays ``2**m`` sub-problems for every ``m`` frozen hotspots;
this package decides — per instance, under an explicit resource budget —
how deep to freeze, which of the resulting assignments deserve quantum
execution, and whether sibling optimizers should be warm-started from a
shared representative:

* :class:`ExecutionBudget` — the resource envelope (circuits / shots /
  wall-clock proxy);
* :class:`FreezePlanner` / :class:`FreezePlan` — the inspectable per-
  instance decision (depth, hotspots, top-k cap, warm start, rationale);
* :func:`rank_assignments` — annealer-probe + offset-bound triage of the
  fan-out, feeding the solver's budgeted pruning;
* :func:`set_default_planning` — session defaults, the CLI's
  ``--budget`` / ``--plan`` / ``--warm-start`` switchboard.
"""

from repro.planning.budget import ExecutionBudget
from repro.planning.planner import FreezePlan, FreezePlanner, plan_freeze
from repro.planning.pruning import (
    AssignmentRank,
    offset_lower_bound,
    rank_assignments,
)
from repro.planning.session import (
    PlanningDefaults,
    get_default_planning,
    set_default_planning,
)

__all__ = [
    "AssignmentRank",
    "ExecutionBudget",
    "FreezePlan",
    "FreezePlanner",
    "PlanningDefaults",
    "get_default_planning",
    "offset_lower_bound",
    "plan_freeze",
    "rank_assignments",
    "set_default_planning",
]
