"""Graph-sparsification proxy training (Red-QAOA-style circuit reduction).

Train QAOA parameters on a reduced-node/reduced-edge proxy of each
sub-problem, then transfer them to the full instance for a short
refinement — the landscape is preserved well enough that the expensive
full-instance optimizer collapses to a handful of refinement steps. See
:mod:`repro.reduction.sparsify` for the reduction itself and
:mod:`repro.reduction.proxy` for the canonical-frame transfer plans the
solve path consumes.
"""

from repro.reduction.proxy import (
    PROXY_MIN_QUBITS,
    PROXY_MIN_TERMS,
    ProxySpec,
    canonical_instance,
    plan_proxy,
    proxy_seed,
)
from repro.reduction.sparsify import (
    MIN_PROXY_NODES,
    ReducedIsing,
    ReductionReport,
    reduce_ising,
)

__all__ = [
    "MIN_PROXY_NODES",
    "PROXY_MIN_QUBITS",
    "PROXY_MIN_TERMS",
    "ProxySpec",
    "ReducedIsing",
    "ReductionReport",
    "canonical_instance",
    "plan_proxy",
    "proxy_seed",
    "reduce_ising",
]
