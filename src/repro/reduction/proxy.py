"""Proxy-training plans: canonical-frame proxies + parameter transfer keys.

The solve path trains QAOA parameters on a sparsified *proxy* of each
sub-problem (see :mod:`repro.reduction.sparsify`) and transfers them to
the full instance for a short gradient refinement. Everything here is
arranged so the proxy training is a pure function of the sub-problem's
*canonical* identity:

* The proxy is built from the **canonical instance** — the sub-problem
  relabeled (and possibly ``h``-flipped) by its
  :func:`~repro.cache.keys.canonical_ising_key` witness. QAOA parameters
  are label-free, and the global flip maps one landscape onto the other
  with the *same* optimal angles (conjugating by ``X^{\\otimes n}``
  commutes with the mixer and negates only the frame, not the
  expectation), so training in the canonical frame loses nothing — and
  makes the trained ``(gammas, betas)`` bit-identical across relabeled
  siblings, sweep repeats, and mirror pairs.

* The proxy optimizer's seed is derived from the canonical digest, not
  drawn from the job's RNG stream — so a cache hit (skipping the proxy
  training entirely) leaves the job's sampling stream exactly where a
  live training would have, preserving the solve-level bit-identity
  contract.

:func:`plan_proxy` packages all of it into a picklable :class:`ProxySpec`
that rides on the job spec into whichever backend worker trains it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.cache.keys import (
    CanonicalKey,
    canonical_ising_key,
    ising_fingerprint,
    proxy_params_key,
)
from repro.ising.hamiltonian import IsingHamiltonian
from repro.reduction.sparsify import ReductionReport, reduce_ising

if TYPE_CHECKING:
    from repro.core.solver import SolverConfig

#: Below this size the full instance is already trivial to train — the
#: proxy detour would cost more than it saves.
PROXY_MIN_QUBITS = 6

#: Likewise for near-edgeless instances: nothing to sparsify.
PROXY_MIN_TERMS = 3


@dataclass(frozen=True)
class ProxySpec:
    """One sub-problem's proxy-training plan (picklable; rides on a job).

    Attributes:
        hamiltonian: The canonical-frame proxy instance to train on.
        seed: Deterministic optimizer seed, derived from the canonical
            digest — never from the job's stream (see module docstring).
        cache_key: Where a *fresh* (un-warm-started) proxy training's
            outcome is cached; shared by every equivalent sub-problem.
        report: The sparsifier's similarity/reduction accounting.
        params: Pre-trained proxy ``(gammas, betas)`` when already known —
            from a cache hit at prepare time, or injected from a sibling
            that trained the identical proxy earlier in the same solve
            (``proxy_from``). Training is skipped; transfer + refinement
            still run.
    """

    hamiltonian: IsingHamiltonian
    seed: int
    cache_key: "str | None"
    report: ReductionReport
    params: "tuple[tuple[float, ...], tuple[float, ...]] | None" = None


def canonical_instance(
    hamiltonian: IsingHamiltonian,
) -> tuple[IsingHamiltonian, CanonicalKey]:
    """The instance rewritten into its canonical frame, plus the key.

    Applies the canonical key's witness — relabel by ``permutation``,
    negate ``h`` when ``flipped`` — so every instance equivalent under
    relabeling/flip maps to the *same* canonical instance, bit for bit.
    Budget-capped keys (``complete=False``) carry no witness; the
    instance is returned unchanged and sharing degrades to exact matches.
    """
    key = canonical_ising_key(hamiltonian)
    if not key.complete:
        return hamiltonian, key
    n = hamiltonian.num_qubits
    sign = -1.0 if key.flipped else 1.0
    perm = key.permutation
    h = hamiltonian.linear
    canonical_h = np.zeros(n)
    for original in range(n):
        canonical_h[perm[original]] = sign * h[original]
    canonical_j = {}
    for (i, j), coupling in hamiltonian.quadratic.items():
        a, b = perm[i], perm[j]
        canonical_j[(min(a, b), max(a, b))] = coupling
    return (
        IsingHamiltonian(n, canonical_h, canonical_j, hamiltonian.offset),
        key,
    )


def proxy_seed(identity: str) -> int:
    """Deterministic optimizer seed from a canonical digest (hex string)."""
    return int(identity[:16], 16) % (2**31 - 1)


def plan_proxy(
    hamiltonian: IsingHamiltonian, config: "SolverConfig"
) -> "ProxySpec | None":
    """Build a sub-problem's proxy-training plan, or ``None`` to opt out.

    Opts out when the instance is too small for the detour to pay
    (:data:`PROXY_MIN_QUBITS` / :data:`PROXY_MIN_TERMS`) or when the
    sparsifier achieved no reduction at the configured ratio — the caller
    then trains directly on the full instance, exactly as with
    ``proxy_training=False``.
    """
    if (
        hamiltonian.num_qubits < PROXY_MIN_QUBITS
        or hamiltonian.num_terms < PROXY_MIN_TERMS
    ):
        return None
    canonical, key = canonical_instance(hamiltonian)
    identity = key.digest if key.complete else ising_fingerprint(canonical)
    seed = proxy_seed(identity)
    reduced = reduce_ising(canonical, ratio=config.proxy_ratio, seed=seed)
    proxy = reduced.proxy
    if (
        proxy.num_qubits >= hamiltonian.num_qubits
        and proxy.num_terms >= hamiltonian.num_terms
    ):
        return None
    cache_key = proxy_params_key(
        identity,
        num_layers=config.num_layers,
        grid_resolution=config.grid_resolution,
        maxiter=config.maxiter,
        ratio=config.proxy_ratio,
        optimizer="lbfgs" if config.gradient_training else "nm",
        engine="vec" if config.vectorized_evaluation else "scalar",
    )
    return ProxySpec(
        hamiltonian=proxy,
        seed=seed,
        cache_key=cache_key,
        report=reduced.report,
    )
