"""Red-QAOA-style graph sparsification of Ising instances.

QAOA energy landscapes are largely shaped by a graph's coarse structure —
its connectivity backbone and degree profile — not by every individual
edge (Red-QAOA, PAPERS.md). :func:`reduce_ising` exploits that: it builds
a smaller *proxy* instance whose landscape approximates the original's
well enough to train ``(gammas, betas)`` on, in two seeded, deterministic
stages:

1. **MST-guarded edge sampling.** A maximum-``|J|`` spanning forest is
   always kept (the guard: sparsification never disconnects a connected
   component, and the strongest couplings — the landscape's dominant
   terms — survive). The remaining edges are sampled without replacement
   with probability proportional to ``|J|`` until ``ceil(ratio * |J|)``
   edges remain.
2. **Low-impact node contraction.** Nodes of degree <= 1 in the kept
   graph are contracted in increasing order of impact
   (``|h_u| + sum |J_uv|``) until ``ceil(ratio * n)`` nodes remain: a
   leaf ``u`` is folded into its neighbor ``v`` with the locally-optimal
   alignment ``z_u = -sign(J_uv) * z_v`` (its ``h`` folds into ``h_v``,
   the coupling into the offset); an isolated node contributes its
   independent optimum ``-|h_u|`` to the offset. Contracting only leaves
   keeps the MST guard intact — connectivity of the remaining nodes is
   untouched.

Both stages consume randomness exclusively from ``numpy``'s
``default_rng(seed)`` with sorted, index-tie-broken orderings, so the
proxy is a pure function of ``(instance, ratio, seed)`` — which is what
makes proxy trainings cacheable and bit-identical across backends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ising.hamiltonian import IsingHamiltonian

#: Never contract below this many nodes — a 1-spin proxy has no couplings
#: left to shape a landscape with.
MIN_PROXY_NODES = 2

#: Spectral-similarity score guard: eigendecomposition is O(n^3).
MAX_SPECTRAL_NODES = 128


@dataclass(frozen=True)
class ReductionReport:
    """How a proxy relates to its original instance.

    Attributes:
        num_qubits: Original node count.
        num_proxy_qubits: Proxy node count after contraction.
        num_terms: Original coupling count.
        num_proxy_terms: Proxy coupling count.
        num_edges_dropped: Couplings removed by the sampling stage.
        num_contracted: Nodes folded away by the contraction stage.
        degree_similarity: ``1 - TV(degree histogram, proxy degree
            histogram)`` in [0, 1]; 1.0 means the normalised degree
            distributions match exactly.
        spectral_similarity: ``1 - ||spec - spec'|| / ||spec||`` over the
            (resampled, sorted) eigenvalues of the weighted coupling
            matrices — the Red-QAOA landscape-preservation proxy. ``NaN``
            above :data:`MAX_SPECTRAL_NODES` or for edgeless instances.
    """

    num_qubits: int
    num_proxy_qubits: int
    num_terms: int
    num_proxy_terms: int
    num_edges_dropped: int
    num_contracted: int
    degree_similarity: float
    spectral_similarity: float


@dataclass(frozen=True)
class ReducedIsing:
    """A proxy instance plus the report tying it to its original."""

    proxy: IsingHamiltonian
    report: ReductionReport


class _UnionFind:
    def __init__(self, n: int) -> None:
        self._parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self._parent[rb] = ra
        return True


def _spanning_forest(
    num_qubits: int, edges: list[tuple[tuple[int, int], float]]
) -> set[tuple[int, int]]:
    """Kruskal maximum-``|J|`` spanning forest (deterministic tie-breaks)."""
    uf = _UnionFind(num_qubits)
    forest: set[tuple[int, int]] = set()
    for (i, j), coupling in sorted(
        edges, key=lambda item: (-abs(item[1]), item[0])
    ):
        if uf.union(i, j):
            forest.add((i, j))
    return forest


def _sample_extra_edges(
    extras: list[tuple[tuple[int, int], float]],
    count: int,
    rng: np.random.Generator,
) -> set[tuple[int, int]]:
    """``count`` non-forest edges, weighted by ``|J|``, without replacement.

    Efraimidis–Spirakis keys (``u**(1/w)``, keep the largest) give an
    exact weighted sample from one vectorized uniform draw — the draw
    happens in sorted-edge order, so the choice is seed-deterministic.
    """
    if count <= 0 or not extras:
        return set()
    if count >= len(extras):
        return {pair for pair, _ in extras}
    weights = np.asarray([abs(coupling) for _, coupling in extras])
    weights = np.maximum(weights, 1e-300)
    keys = rng.random(len(extras)) ** (1.0 / weights)
    order = sorted(range(len(extras)), key=lambda idx: (-keys[idx], idx))
    return {extras[idx][0] for idx in order[:count]}


def _degree_similarity(
    original: IsingHamiltonian, proxy: IsingHamiltonian
) -> float:
    """1 - total-variation distance of the normalised degree histograms."""
    def histogram(h: IsingHamiltonian) -> np.ndarray:
        degrees = np.zeros(h.num_qubits, dtype=int)
        for i, j in h.quadratic:
            degrees[i] += 1
            degrees[j] += 1
        counts = np.bincount(degrees)
        return counts / max(1, h.num_qubits)

    a, b = histogram(original), histogram(proxy)
    size = max(len(a), len(b))
    a = np.pad(a, (0, size - len(a)))
    b = np.pad(b, (0, size - len(b)))
    return float(1.0 - 0.5 * np.abs(a - b).sum())


def _coupling_spectrum(hamiltonian: IsingHamiltonian) -> np.ndarray:
    matrix = np.zeros((hamiltonian.num_qubits, hamiltonian.num_qubits))
    for (i, j), coupling in hamiltonian.quadratic.items():
        matrix[i, j] = matrix[j, i] = coupling
    return np.sort(np.linalg.eigvalsh(matrix))


def _spectral_similarity(
    original: IsingHamiltonian, proxy: IsingHamiltonian
) -> float:
    """Relative closeness of the (resampled) coupling-matrix spectra."""
    if (
        original.num_qubits > MAX_SPECTRAL_NODES
        or original.num_terms == 0
        or proxy.num_qubits == 0
    ):
        return float("nan")
    spec_full = _coupling_spectrum(original)
    spec_proxy = _coupling_spectrum(proxy)
    # Resample the proxy's sorted spectrum onto the original's length so
    # the comparison is shape-to-shape, not size-to-size.
    grid_full = np.linspace(0.0, 1.0, len(spec_full))
    grid_proxy = np.linspace(0.0, 1.0, max(2, len(spec_proxy)))
    if len(spec_proxy) == 1:
        spec_proxy = np.repeat(spec_proxy, 2)
    resampled = np.interp(grid_full, grid_proxy, spec_proxy)
    norm = float(np.linalg.norm(spec_full))
    if norm == 0.0:
        return float("nan")
    return float(1.0 - np.linalg.norm(spec_full - resampled) / norm)


def reduce_ising(
    hamiltonian: IsingHamiltonian,
    ratio: float = 0.5,
    seed: int = 0,
) -> ReducedIsing:
    """Build a reduced-node/reduced-edge proxy of an Ising instance.

    Args:
        hamiltonian: The instance to sparsify.
        ratio: Target fraction of edges *and* nodes to keep, in (0, 1];
            the MST guard and :data:`MIN_PROXY_NODES` floor both override
            it upward. ``ratio >= 1`` is the identity reduction.
        seed: Seed for the weighted edge sampling — the only stochastic
            stage; everything else is sorted and tie-broken by index.

    Returns:
        The proxy instance (compactly relabeled to ``0..n'-1``, preserving
        relative node order) and its :class:`ReductionReport`.
    """
    n = hamiltonian.num_qubits
    edges = sorted(hamiltonian.quadratic.items())
    if ratio >= 1.0 or n <= MIN_PROXY_NODES:
        report = ReductionReport(
            num_qubits=n,
            num_proxy_qubits=n,
            num_terms=len(edges),
            num_proxy_terms=len(edges),
            num_edges_dropped=0,
            num_contracted=0,
            degree_similarity=1.0,
            spectral_similarity=1.0 if edges else float("nan"),
        )
        return ReducedIsing(proxy=hamiltonian, report=report)

    rng = np.random.default_rng(seed)

    # Stage 1: MST guard + weighted edge sampling down to the ratio.
    forest = _spanning_forest(n, edges)
    target_edges = max(len(forest), math.ceil(ratio * len(edges)))
    extras = [(pair, coupling) for pair, coupling in edges if pair not in forest]
    sampled = _sample_extra_edges(extras, target_edges - len(forest), rng)
    kept_pairs = forest | sampled
    kept = {pair: coupling for pair, coupling in edges if pair in kept_pairs}

    # Stage 2: contract low-impact leaves until the node target.
    h = {i: float(v) for i, v in enumerate(hamiltonian.linear)}
    offset = hamiltonian.offset
    adjacency: dict[int, set[int]] = {i: set() for i in range(n)}
    for i, j in kept:
        adjacency[i].add(j)
        adjacency[j].add(i)
    alive = set(range(n))
    target_nodes = max(MIN_PROXY_NODES, math.ceil(ratio * n))

    def impact(u: int) -> float:
        coupled = sum(
            abs(kept[(min(u, v), max(u, v))]) for v in adjacency[u]
        )
        return abs(h[u]) + coupled

    contracted = 0
    while len(alive) > target_nodes:
        candidates = [u for u in alive if len(adjacency[u]) <= 1]
        if not candidates:
            break
        u = min(candidates, key=lambda node: (impact(node), node))
        if adjacency[u]:
            v = next(iter(adjacency[u]))
            pair = (min(u, v), max(u, v))
            coupling = kept.pop(pair)
            # Locally-optimal alignment: z_u = -sign(J_uv) * z_v minimises
            # the coupling term; u's field rides along on v.
            sign = -1.0 if coupling > 0 else 1.0
            h[v] += sign * h[u]
            offset += sign * coupling
            adjacency[v].discard(u)
        else:
            # Isolated node: its independent optimum is -|h_u|.
            offset -= abs(h[u])
        alive.discard(u)
        del adjacency[u], h[u]
        contracted += 1

    # Compact relabeling, preserving relative node order.
    rank = {node: idx for idx, node in enumerate(sorted(alive))}
    proxy = IsingHamiltonian(
        len(alive),
        {rank[node]: value for node, value in h.items()},
        {
            (rank[i], rank[j]): coupling
            for (i, j), coupling in kept.items()
        },
        offset=offset,
    )
    report = ReductionReport(
        num_qubits=n,
        num_proxy_qubits=proxy.num_qubits,
        num_terms=len(edges),
        num_proxy_terms=proxy.num_terms,
        num_edges_dropped=len(edges) - len(kept_pairs),
        num_contracted=contracted,
        degree_similarity=_degree_similarity(hamiltonian, proxy),
        spectral_similarity=_spectral_similarity(hamiltonian, proxy),
    )
    return ReducedIsing(proxy=proxy, report=report)
