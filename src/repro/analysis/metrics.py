"""Aggregate metrics: improvement factors and geometric means.

The paper reports fidelity improvements as ratios of ARGs
(``ARG_baseline / ARG_frozenqubits``, higher is better) and aggregates
across benchmarks/machines with geometric means (the GMEAN bar of Fig. 13).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ReproError


def improvement_factor(baseline_metric: float, improved_metric: float) -> float:
    """``baseline / improved`` for lower-is-better metrics like ARG.

    Raises:
        ReproError: If the improved metric is zero or either is negative.
    """
    if baseline_metric < 0 or improved_metric < 0:
        raise ReproError("improvement factors need non-negative metrics")
    if improved_metric == 0.0:
        raise ReproError("improved metric is zero; factor is unbounded")
    return baseline_metric / improved_metric


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values.

    Raises:
        ReproError: On empty input or non-positive entries.
    """
    if len(values) == 0:
        raise ReproError("geometric mean of empty sequence")
    array = np.asarray(values, dtype=float)
    if np.any(array <= 0):
        raise ReproError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))


def relative_series(values: Sequence[float], reference: float) -> list[float]:
    """Each value divided by a reference (the paper's "Relative X" axes).

    Raises:
        ReproError: If the reference is zero.
    """
    if reference == 0.0:
        raise ReproError("cannot normalise by a zero reference")
    return [float(v) / reference for v in values]
