"""Expected Probability of Success (EPS) — paper Sec. 6.3.

EPS is the probability that every gate and measurement executes without
error *and* no qubit decoheres for the duration of the circuit:

    EPS = prod_gates (1 - eps_gate)
        * prod_qubits (1 - eps_readout)
        * prod_qubits exp(-T / T_dec)

The paper evaluates 500-qubit circuits with an *optimistic* model — 0.1%
CNOT error, 0.5% readout error, 500 microseconds decoherence — because
running such circuits is infeasible; EPS is the standard compiler-evaluation
stand-in at that scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import circuit_layers
from repro.devices.calibration import DEFAULT_DURATIONS_NS
from repro.exceptions import SimulationError


@dataclass(frozen=True)
class ErrorModel:
    """Flat error model for EPS computations.

    Attributes:
        cx_error: Two-qubit gate error probability.
        readout_error: Per-qubit measurement error probability.
        decoherence_us: Qubit coherence time (applies to every qubit).
        single_qubit_error: Physical 1q gate error probability.
    """

    cx_error: float = 0.001
    readout_error: float = 0.005
    decoherence_us: float = 500.0
    single_qubit_error: float = 0.0001

    def __post_init__(self) -> None:
        for name in ("cx_error", "readout_error", "single_qubit_error"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SimulationError(f"{name} must be in [0, 1], got {value}")
        if self.decoherence_us <= 0:
            raise SimulationError(
                f"decoherence_us must be positive, got {self.decoherence_us}"
            )


#: The paper's optimistic Sec.-6.3 model.
OPTIMISTIC_ERROR_MODEL = ErrorModel()


def expected_probability_of_success(
    circuit: QuantumCircuit,
    model: ErrorModel = OPTIMISTIC_ERROR_MODEL,
    num_active_qubits: "int | None" = None,
    log_space: bool = False,
) -> float:
    """EPS of a (physical) circuit under a flat error model.

    Args:
        circuit: Compiled circuit; ``cx`` counts as two-qubit, ``rz`` and
            barriers are free, every other gate is a physical 1q pulse.
        model: Error model (defaults to the paper's optimistic one).
        num_active_qubits: Qubits exposed to readout and decoherence;
            defaults to the number of distinct qubits touched by gates.
        log_space: Return ``log10(EPS)`` instead (500-qubit EPS values
            underflow double precision otherwise).

    Returns:
        EPS in [0, 1] (or its log10).
    """
    log_eps = 0.0
    touched: set[int] = set()
    for instruction in circuit:
        name = instruction.name
        if name in ("barrier", "measure", "rz", "p"):
            if name == "measure":
                touched.update(instruction.qubits)
            continue
        touched.update(instruction.qubits)
        if name in ("cx", "cz"):
            log_eps += np.log10(1.0 - model.cx_error)
        elif name == "swap":
            log_eps += 3.0 * np.log10(1.0 - model.cx_error)
        elif name == "rzz":
            log_eps += 2.0 * np.log10(1.0 - model.cx_error)
        else:
            log_eps += np.log10(1.0 - model.single_qubit_error)
    active = num_active_qubits if num_active_qubits is not None else len(touched)
    log_eps += active * np.log10(1.0 - model.readout_error)

    duration_ns = 0.0
    for layer in circuit_layers(circuit):
        duration_ns += max(
            (DEFAULT_DURATIONS_NS.get(op.name, 0.0) for op in layer), default=0.0
        )
    decoherence_ns = model.decoherence_us * 1000.0
    log_eps += active * (-duration_ns / decoherence_ns) * np.log10(np.e)
    if log_space:
        return float(log_eps)
    return float(10.0**log_eps)


def relative_eps_log10(
    sub_circuit: QuantumCircuit,
    baseline_circuit: QuantumCircuit,
    model: ErrorModel = OPTIMISTIC_ERROR_MODEL,
) -> float:
    """``log10(EPS_sub / EPS_baseline)`` — the Fig. 16 series, safely in
    log space (absolute EPS underflows at 500 qubits)."""
    return expected_probability_of_success(
        sub_circuit, model, log_space=True
    ) - expected_probability_of_success(baseline_circuit, model, log_space=True)
