"""Analytical models and metrics used by the paper's evaluation.

* :mod:`repro.analysis.eps` — Expected Probability of Success (Sec. 6.3).
* :mod:`repro.analysis.runtime` — the Eq. (6) end-to-end runtime model with
  the four cloud execution models of Fig. 18.
* :mod:`repro.analysis.metrics` — ARG improvements, geometric means.
* :mod:`repro.analysis.tradeoff` — fidelity-vs-quantum-cost curves (Fig. 9).
"""

from repro.analysis.eps import (
    OPTIMISTIC_ERROR_MODEL,
    ErrorModel,
    expected_probability_of_success,
)
from repro.analysis.metrics import geometric_mean, improvement_factor, relative_series
from repro.analysis.runtime import (
    EXECUTION_MODELS,
    ExecutionModel,
    WorkloadTiming,
    overall_runtime_hours,
)
from repro.analysis.tradeoff import (
    TradeoffPoint,
    detect_plateau,
    knee_under_budget,
    landscape_sharpness_curve,
    tradeoff_curve,
)

__all__ = [
    "EXECUTION_MODELS",
    "ErrorModel",
    "ExecutionModel",
    "OPTIMISTIC_ERROR_MODEL",
    "TradeoffPoint",
    "WorkloadTiming",
    "detect_plateau",
    "expected_probability_of_success",
    "geometric_mean",
    "improvement_factor",
    "knee_under_budget",
    "landscape_sharpness_curve",
    "overall_runtime_hours",
    "relative_series",
    "tradeoff_curve",
]
