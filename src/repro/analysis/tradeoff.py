"""Fidelity-cost trade-off analysis (paper Sec. 3.4, Sec. 5.1.3, Fig. 9).

Freezing more qubits shrinks sub-circuits (better fidelity) but costs
exponentially more circuit executions. The trade-off curve pairs the
quantum cost ``2**m`` (x-axis of Fig. 9) with a lower-is-better fidelity
proxy (ARG, CX count, or depth, normalised to m=0); ``detect_plateau``
finds the paper's diminishing-returns knee.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.exceptions import ReproError

if TYPE_CHECKING:
    from repro.devices.device import Device
    from repro.ising.hamiltonian import IsingHamiltonian


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of the Fig. 9 curve.

    Attributes:
        num_frozen: m.
        quantum_cost: Circuits required, ``2**m`` (the paper plots the
            unpruned cost on this axis).
        relative_value: Metric at m divided by the metric at m=0.
    """

    num_frozen: int
    quantum_cost: int
    relative_value: float


def tradeoff_curve(metric_by_m: Sequence[float]) -> list[TradeoffPoint]:
    """Build the relative trade-off curve from a metric indexed by m.

    Args:
        metric_by_m: Metric values for m = 0, 1, 2, ... (m=0 = baseline).

    Raises:
        ReproError: On empty input or a zero baseline value.
    """
    if len(metric_by_m) == 0:
        raise ReproError("metric_by_m is empty")
    baseline = metric_by_m[0]
    if baseline == 0.0:
        raise ReproError("baseline metric is zero; relative curve undefined")
    return [
        TradeoffPoint(
            num_frozen=m,
            quantum_cost=2**m,
            relative_value=float(value / baseline),
        )
        for m, value in enumerate(metric_by_m)
    ]


def landscape_sharpness_curve(
    hamiltonian: "IsingHamiltonian",
    max_frozen: int,
    device: "Device | None" = None,
    resolution: int = 12,
) -> list[TradeoffPoint]:
    """Fig. 9-style trade-off curve of p=1 landscape *sharpness* vs m.

    The paper's Fig. 12 observation as a cost curve: freezing hotspots
    sharpens the (noisy) optimizer landscape, which is what makes the
    sub-problems trainable. For each depth m the first executed
    sub-problem's full ``resolution**2`` landscape is evaluated in one
    batched analytic kernel call and condensed to its sharpness; the curve
    reports ``sharpness(m=0) / sharpness(m)`` on the familiar
    lower-is-better ``relative_value`` axis against the ``2**m`` quantum
    cost.

    Args:
        hamiltonian: The parent problem.
        max_frozen: Largest m to scan (clamped below ``num_qubits``).
        device: Optional device; enables the noisy landscape (the paper's
            setting — without noise the sharpness barely moves).
        resolution: Grid points per axis of each landscape scan.

    Raises:
        ReproError: When the baseline landscape is perfectly flat.
    """
    from repro.core.hotspots import select_hotspots
    from repro.core.partition import executed_subproblems, partition_problem
    from repro.qaoa.executor import batch_objective, make_context
    from repro.qaoa.optimizer import landscape_scan

    if max_frozen < 0:
        raise ReproError(f"max_frozen must be >= 0, got {max_frozen}")
    flatness: list[float] = []
    upper = min(max_frozen, max(hamiltonian.num_qubits - 1, 0))
    hotspots = select_hotspots(hamiltonian, upper)
    for m in range(upper + 1):
        if m == 0:
            target = hamiltonian
        else:
            parts = partition_problem(hamiltonian, hotspots[:m])
            target = executed_subproblems(parts)[0].hamiltonian
        context = make_context(target, num_layers=1, device=device)
        scan = landscape_scan(
            None,
            resolution=resolution,
            evaluate_batch=batch_objective(context, noisy=device is not None),
        )
        sharpness = scan.sharpness()
        if sharpness == 0.0:
            if m == 0:
                raise ReproError(
                    "baseline landscape is flat; sharpness curve undefined"
                )
            flatness.append(float("inf"))
        else:
            flatness.append(1.0 / sharpness)
    return tradeoff_curve(flatness)


def detect_plateau(
    curve: Sequence[TradeoffPoint], threshold: float = 0.02
) -> int:
    """Smallest m after which the marginal relative improvement stays below
    ``threshold`` — the Sec. 5.1.3 saturation point.

    Returns the last worthwhile m (0 if freezing never helps by more than
    the threshold).
    """
    if threshold < 0:
        raise ReproError(f"threshold must be >= 0, got {threshold}")
    best = 0
    for index in range(1, len(curve)):
        gain = curve[index - 1].relative_value - curve[index].relative_value
        if gain >= threshold:
            best = curve[index].num_frozen
    return best


def knee_under_budget(
    curve: Sequence[TradeoffPoint],
    max_cost: "int | None" = None,
    threshold: float = 0.02,
) -> int:
    """The last worthwhile m whose quantum cost fits a circuit budget.

    The budget-aware variant of :func:`detect_plateau` used by the freeze
    planner: stop at the diminishing-returns knee *or* where ``2**m``
    exceeds ``max_cost``, whichever comes first. Unlike
    :func:`detect_plateau` the walk is sequential — a later large gain
    cannot rescue a depth whose intermediate steps were not worth paying
    for, because every intermediate doubling of cost is paid regardless.

    Args:
        curve: The relative trade-off curve (see :func:`tradeoff_curve`).
        max_cost: Circuit budget on the ``quantum_cost`` axis; ``None``
            leaves the budget unbounded.
        threshold: Marginal-improvement floor, as in :func:`detect_plateau`.

    Returns:
        The chosen m (0 when no affordable depth clears the threshold).
    """
    if threshold < 0:
        raise ReproError(f"threshold must be >= 0, got {threshold}")
    if max_cost is not None and max_cost < 1:
        raise ReproError(f"max_cost must be >= 1, got {max_cost}")
    best = 0
    for index in range(1, len(curve)):
        if max_cost is not None and curve[index].quantum_cost > max_cost:
            break
        gain = curve[index - 1].relative_value - curve[index].relative_value
        if gain < threshold:
            break
        best = curve[index].num_frozen
    return best
