"""End-to-end workflow runtime model — paper Eq. (6) and Fig. 18.

    T = delta_compile
      + I * N_batch * (tau * t_NISQ + Delta_cloud)
      + delta_opt + delta_pp

with ``I`` training iterations, ``tau`` trials (shots) per circuit,
``t_NISQ`` seconds per trial, ``N_batch`` job batches per iteration,
``Delta_cloud`` the cloud access latency per job, ``delta_opt`` the total
classical-optimizer latency, and ``delta_pp`` post-processing.

The four execution models of Fig. 18 combine batching (up to 900 circuits
per job, as on IBMQ) or no batching (Rigetti-style) with shared
(Delta_cloud = 30 min) or dedicated (Delta_cloud = 0) access.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ReproError


@dataclass(frozen=True)
class ExecutionModel:
    """A cloud execution mode.

    Attributes:
        name: Display name (matches Fig. 18 x-axis labels).
        batch_size: Circuits per cloud job (1 = no batching).
        cloud_latency_s: Per-job access latency.
    """

    name: str
    batch_size: int
    cloud_latency_s: float

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ReproError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.cloud_latency_s < 0:
            raise ReproError(
                f"cloud_latency_s must be >= 0, got {self.cloud_latency_s}"
            )


#: Fig. 18's four execution models.
EXECUTION_MODELS: dict[str, ExecutionModel] = {
    "sequential+shared": ExecutionModel("Sequential+Shared [Azure]", 1, 1800.0),
    "sequential+dedicated": ExecutionModel("Sequential+Dedicated [Amazon]", 1, 0.0),
    "batched+shared": ExecutionModel("Batched+Shared [IBMQ]", 900, 1800.0),
    "batched+dedicated": ExecutionModel("Batched+Dedicated [IBMQ]", 900, 0.0),
}


@dataclass(frozen=True)
class WorkloadTiming:
    """Per-workload constants of Eq. (6), with the paper's defaults.

    Attributes:
        iterations: Training iterations I per circuit (paper: 1000).
        trials: Trials tau per circuit per iteration (paper: 25K).
        trial_seconds: t_NISQ (paper: 1 ms).
        optimizer_seconds_per_iteration: Delta_opt (paper: 1 minute).
        compile_seconds: delta_compile (paper: 2 hours, compiled once).
        postprocess_seconds: delta_pp (paper: 1 minute for FrozenQubits).
    """

    iterations: int = 1000
    trials: int = 25_000
    trial_seconds: float = 1e-3
    optimizer_seconds_per_iteration: float = 60.0
    compile_seconds: float = 7200.0
    postprocess_seconds: float = 60.0


def overall_runtime_hours(
    num_circuits: int,
    model: ExecutionModel,
    timing: "WorkloadTiming | None" = None,
) -> float:
    """Eq. (6) evaluated for a workload of ``num_circuits`` parallel
    sub-circuits per training iteration (baseline: 1).

    Batching executes up to ``batch_size`` circuits per cloud job; the
    quantum execution time within a job is the *sum* of its circuits'
    trials (the device still runs them serially), but the cloud latency is
    paid once per job.

    Returns:
        Total workflow time in hours.
    """
    if num_circuits < 1:
        raise ReproError(f"num_circuits must be >= 1, got {num_circuits}")
    t = timing or WorkloadTiming()
    num_batches = math.ceil(num_circuits / model.batch_size)
    per_iteration = (
        num_batches * model.cloud_latency_s
        + num_circuits * t.trials * t.trial_seconds
        + t.optimizer_seconds_per_iteration
    )
    total_seconds = (
        t.compile_seconds + t.iterations * per_iteration + t.postprocess_seconds
    )
    return total_seconds / 3600.0
