"""Legacy setup shim.

The pinned offline toolchain (setuptools 65 without the ``wheel`` package)
cannot perform PEP 660 editable installs; this shim lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
