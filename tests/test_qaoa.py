"""Tests for repro.qaoa: circuit construction, the analytic p=1 engine,
metrics, optimizer, and evaluation contexts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.devices import get_backend
from repro.exceptions import QAOAError
from repro.graphs.generators import barabasi_albert_graph, ring_graph, sk_graph
from repro.ising import IsingHamiltonian, brute_force_minimum
from repro.qaoa import (
    approximation_ratio,
    approximation_ratio_gap,
    build_qaoa_circuit,
    build_qaoa_template,
    evaluate_ideal,
    evaluate_noisy,
    landscape_scan,
    make_context,
    optimize_qaoa,
    qaoa1_expectation,
    qaoa1_term_expectations,
)
from repro.sim import expectation_from_probabilities, probabilities
from repro.sim.expectation import term_expectations_from_probabilities
from tests.conftest import hamiltonian_strategy


class TestCircuitConstruction:
    def test_structure_single_layer(self):
        h = IsingHamiltonian(3, linear=[1.0, 0.0, 0.0], quadratic={(0, 1): 1.0})
        template = build_qaoa_template(h)
        ops = template.circuit.count_ops()
        assert ops["h"] == 3          # initial superposition wall
        assert ops["rz"] == 1         # one linear term
        assert ops["rzz"] == 1        # one quadratic term
        assert ops["rx"] == 3         # mixer on all qubits
        assert ops["measure"] == 1
        assert template.num_layers == 1

    def test_layer_scaling(self):
        h = IsingHamiltonian(2, quadratic={(0, 1): 1.0})
        template = build_qaoa_template(h, num_layers=3)
        ops = template.circuit.count_ops()
        assert ops["rzz"] == 3
        assert ops["rx"] == 6
        assert len(template.gammas) == 3

    def test_angle_coefficients_follow_convention(self):
        """RZZ angle = 2*J*gamma; RZ angle = 2*h*gamma (paper Fig. 2)."""
        h = IsingHamiltonian(2, linear=[0.5, 0.0], quadratic={(0, 1): -1.5})
        template = build_qaoa_template(h)
        rz = next(op for op in template.circuit if op.name == "rz")
        rzz = next(op for op in template.circuit if op.name == "rzz")
        assert rz.angle.coefficient == pytest.approx(1.0)   # 2 * 0.5
        assert rzz.angle.coefficient == pytest.approx(-3.0)  # 2 * -1.5

    def test_tags_identify_terms(self):
        h = IsingHamiltonian(3, linear=[1.0, 0, 0], quadratic={(1, 2): 1.0})
        template = build_qaoa_template(h)
        tags = {op.tag for op in template.circuit if op.tag}
        assert tags == {"lin:0", "quad:1:2"}

    def test_linear_support_reserves_rz_slots(self):
        h = IsingHamiltonian(3, quadratic={(0, 1): 1.0})
        template = build_qaoa_template(h, linear_support=[0, 1, 2])
        assert template.circuit.count_ops()["rz"] == 3

    def test_bind_produces_runnable_circuit(self):
        h = IsingHamiltonian(2, quadratic={(0, 1): 1.0})
        template = build_qaoa_template(h)
        bound = template.bind([0.3], [0.5])
        assert not bound.is_parametric

    def test_bind_validates_lengths(self):
        h = IsingHamiltonian(2, quadratic={(0, 1): 1.0})
        template = build_qaoa_template(h, num_layers=2)
        with pytest.raises(QAOAError):
            template.bind([0.1], [0.2])

    def test_zero_layers_rejected(self):
        with pytest.raises(QAOAError):
            build_qaoa_template(IsingHamiltonian(2), num_layers=0)

    def test_empty_problem_rejected(self):
        with pytest.raises(QAOAError):
            build_qaoa_template(IsingHamiltonian(0))

    def test_build_qaoa_circuit_length_mismatch(self):
        with pytest.raises(QAOAError):
            build_qaoa_circuit(IsingHamiltonian(2), [0.1], [0.2, 0.3])


class TestAnalyticExpectation:
    @settings(max_examples=40, deadline=None)
    @given(
        hamiltonian=hamiltonian_strategy(max_qubits=6),
        gamma=st.floats(-3, 3, allow_nan=False),
        beta=st.floats(-3, 3, allow_nan=False),
    )
    def test_matches_statevector_exactly(self, hamiltonian, gamma, beta):
        """The pinned-down closed form agrees with dense simulation to
        machine precision on arbitrary Ising instances."""
        circuit = build_qaoa_circuit(hamiltonian, [gamma], [beta])
        dense = expectation_from_probabilities(hamiltonian, probabilities(circuit))
        closed = qaoa1_expectation(hamiltonian, gamma, beta)
        assert closed == pytest.approx(dense, abs=1e-9)

    def test_term_expectations_match_statevector(self):
        h = IsingHamiltonian(
            4,
            linear=[0.5, 0.0, -1.0, 0.0],
            quadratic={(0, 1): 1.0, (1, 2): -1.0, (0, 3): 0.5},
        )
        gamma, beta = 0.7, 0.3
        circuit = build_qaoa_circuit(h, [gamma], [beta])
        probs = probabilities(circuit)
        z_ref, zz_ref = term_expectations_from_probabilities(h, probs)
        z, zz = qaoa1_term_expectations(h, gamma, beta)
        for qubit, value in z.items():
            assert value == pytest.approx(z_ref[qubit], abs=1e-9)
        for pair, value in zz.items():
            assert value == pytest.approx(zz_ref[pair], abs=1e-9)

    def test_zero_angles_give_offset(self):
        h = IsingHamiltonian(3, quadratic={(0, 1): 1.0}, offset=4.0)
        assert qaoa1_expectation(h, 0.0, 0.0) == pytest.approx(4.0)

    def test_empty_hamiltonian_rejected(self):
        with pytest.raises(QAOAError):
            qaoa1_term_expectations(IsingHamiltonian(0), 0.1, 0.1)


class TestMetrics:
    def test_arg_definition(self):
        # ARG = 100 |(ideal - real)/ideal| (Eq. 4).
        assert approximation_ratio_gap(-10.0, -5.0) == pytest.approx(50.0)
        assert approximation_ratio_gap(-10.0, -10.0) == 0.0

    def test_arg_zero_ideal_rejected(self):
        with pytest.raises(QAOAError):
            approximation_ratio_gap(0.0, 1.0)

    def test_ar_definition(self):
        # AR = EV / C_min (Eq. 5); 1 at the optimum.
        assert approximation_ratio(-8.0, -8.0) == 1.0
        assert approximation_ratio(-4.0, -8.0) == 0.5

    def test_ar_zero_cmin_rejected(self):
        with pytest.raises(QAOAError):
            approximation_ratio(1.0, 0.0)


class TestOptimizer:
    def test_p1_finds_good_parameters_on_ring(self):
        h = IsingHamiltonian.from_graph(ring_graph(6))
        context = make_context(h)
        result = optimize_qaoa(
            lambda g, b: evaluate_ideal(context, g, b), grid_resolution=10
        )
        c_min = brute_force_minimum(h).value
        # p=1 on a uniform ring provably reaches AR ~0.5; the optimizer
        # should get essentially all of it.
        assert approximation_ratio(result.value, c_min) > 0.45
        assert result.num_evaluations >= 100

    def test_history_monotone_decreasing(self):
        h = IsingHamiltonian(3, quadratic={(0, 1): 1.0, (1, 2): 1.0})
        context = make_context(h)
        result = optimize_qaoa(
            lambda g, b: evaluate_ideal(context, g, b), grid_resolution=6
        )
        assert all(a >= b for a, b in zip(result.history, result.history[1:]))

    def test_p2_beats_or_matches_p1(self):
        h = IsingHamiltonian.from_graph(sk_graph(4), weights="random_pm1", seed=9)
        ctx1 = make_context(h, num_layers=1)
        ctx2 = make_context(h, num_layers=2)
        r1 = optimize_qaoa(
            lambda g, b: evaluate_ideal(ctx1, g, b), num_layers=1,
            grid_resolution=8, seed=0,
        )
        r2 = optimize_qaoa(
            lambda g, b: evaluate_ideal(ctx2, g, b), num_layers=2,
            num_starts=6, seed=0,
        )
        assert r2.value <= r1.value + 1e-6

    def test_invalid_layers_rejected(self):
        with pytest.raises(QAOAError):
            optimize_qaoa(lambda g, b: 0.0, num_layers=0)

    def test_landscape_scan_shape_and_best(self):
        h = IsingHamiltonian(4, quadratic={(0, 1): 1.0, (2, 3): -1.0})
        context = make_context(h)
        scan = landscape_scan(
            lambda g, b: evaluate_ideal(context, g, b), resolution=12
        )
        assert scan.values.shape == (12, 12)
        g, b, v = scan.best
        assert v == pytest.approx(scan.values.min())
        assert evaluate_ideal(context, [g], [b]) == pytest.approx(v)

    def test_landscape_resolution_guard(self):
        with pytest.raises(QAOAError):
            landscape_scan(lambda g, b: 0.0, resolution=1)


class TestEvaluationContext:
    def test_ideal_context_has_unit_fidelity(self, small_ba_hamiltonian):
        context = make_context(small_ba_hamiltonian)
        assert context.fidelity == 1.0
        ideal = evaluate_ideal(context, [0.4], [0.3])
        noisy = evaluate_noisy(context, [0.4], [0.3])
        assert ideal == pytest.approx(noisy)

    def test_device_context_attenuates(self, small_ba_hamiltonian):
        context = make_context(small_ba_hamiltonian, device=get_backend("montreal"))
        assert 0.0 < context.fidelity < 1.0
        gammas, betas = [0.5], [0.4]
        ideal = evaluate_ideal(context, gammas, betas)
        noisy = evaluate_noisy(context, gammas, betas)
        offset = small_ba_hamiltonian.offset
        # Noise pulls the expectation toward the offset.
        assert abs(noisy - offset) < abs(ideal - offset)

    def test_wrong_parameter_count_rejected(self, small_ba_hamiltonian):
        context = make_context(small_ba_hamiltonian)
        with pytest.raises(QAOAError):
            evaluate_ideal(context, [0.1, 0.2], [0.3])

    def test_p2_statevector_path(self):
        h = IsingHamiltonian(3, quadratic={(0, 1): 1.0, (1, 2): 1.0})
        context = make_context(h, num_layers=2)
        value = evaluate_ideal(context, [0.3, 0.2], [0.4, 0.1])
        template = build_qaoa_template(h, num_layers=2)
        bound = template.bind([0.3, 0.2], [0.4, 0.1])
        reference = expectation_from_probabilities(h, probabilities(bound))
        assert value == pytest.approx(reference, abs=1e-9)

    def test_deeper_circuit_lower_fidelity(self, small_ba_hamiltonian):
        device = get_backend("montreal")
        p1 = make_context(small_ba_hamiltonian, num_layers=1, device=device)
        p2 = make_context(small_ba_hamiltonian, num_layers=2, device=device)
        assert p2.fidelity < p1.fidelity


class TestNoiseShape:
    def test_arg_grows_with_problem_size(self):
        """The paper's core observation (Fig. 8 baseline curve): ARG of the
        baseline degrades as circuits grow."""
        device = get_backend("montreal")
        args = []
        for size in (4, 10, 16):
            graph = barabasi_albert_graph(size, 1, seed=size)
            h = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=size)
            context = make_context(h, device=device)
            result = optimize_qaoa(
                lambda g, b: evaluate_ideal(context, g, b), grid_resolution=8
            )
            noisy = evaluate_noisy(context, result.gammas, result.betas)
            args.append(approximation_ratio_gap(result.value, noisy))
        assert args[0] < args[-1]
