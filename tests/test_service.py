"""Tests for the resilient solve service and its backend control plumbing.

Async service behaviour is exercised through ``asyncio.run`` wrappers
(no event-loop plugin needed); solve dispatches are stubbed wherever the
orchestration — not the solver — is under test, and run the real seeded
pipeline for the bit-identity acceptance checks.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.backend import (
    ExecutionControl,
    FaultPolicy,
    SerialBackend,
    set_backoff_sleeper,
)
from repro.backend.base import _backoff_sleep
from repro.core.solver import FrozenQubitsSolver, SolverConfig
from repro.exceptions import (
    BackendError,
    DeadlineExceeded,
    ExecutionCancelled,
    ServiceClosed,
    ServiceOverloaded,
    ServiceTimeout,
    ServiceUnavailable,
)
from repro.faults import FaultInjection, InjectedFault
from repro.graphs.generators import random_regular_graph
from repro.ising.hamiltonian import random_pm1_hamiltonian
from repro.service import (
    CircuitBreaker,
    RequestAdmitted,
    RequestCoalesced,
    RequestFinished,
    RequestStarted,
    ServiceConfig,
    ServiceResult,
    SolveRequest,
    SolveService,
)


def problem(index: int = 0, nodes: int = 8):
    graph = random_regular_graph(nodes, degree=3, seed=100 + index)
    return random_pm1_hamiltonian(graph, seed=200 + index)


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# ExecutionControl (the backend-side half of the deadline plumbing)
# ---------------------------------------------------------------------------
class TestExecutionControl:
    def test_no_deadline_no_cancel_is_a_noop(self):
        control = ExecutionControl()
        control.checkpoint("anywhere")  # must not raise
        assert control.remaining() is None
        assert not control.cancelled()

    def test_deadline_raises_deadline_exceeded(self):
        now = [0.0]
        control = ExecutionControl(deadline=10.0, clock=lambda: now[0])
        control.checkpoint()
        now[0] = 11.0
        with pytest.raises(DeadlineExceeded):
            control.checkpoint("level 2")

    def test_cancel_raises_execution_cancelled(self):
        cancel = threading.Event()
        control = ExecutionControl(cancel=cancel)
        control.checkpoint()
        cancel.set()
        with pytest.raises(ExecutionCancelled):
            control.checkpoint()

    def test_cancellation_is_not_a_backend_error(self):
        # Circuit breakers and failure budgets key on BackendError; a
        # cooperative cancellation must never look like backend illness.
        assert not issubclass(ExecutionCancelled, BackendError)
        assert not issubclass(DeadlineExceeded, BackendError)

    def test_progress_callback_fires_and_swallows_errors(self):
        seen = []
        control = ExecutionControl(
            on_job_done=lambda job_id, failed: seen.append((job_id, failed))
        )
        control.notify_job_done("sp0", False)
        assert seen == [("sp0", False)]

        def broken(job_id, failed):
            raise RuntimeError("observer bug")

        ExecutionControl(on_job_done=broken).notify_job_done("sp1", True)

    def test_backend_honours_deadline_between_jobs(self):
        h = problem()
        solver = FrozenQubitsSolver(num_frozen=1, seed=3)
        now = [0.0]
        control = ExecutionControl(deadline=-1.0, clock=lambda: now[0])
        with pytest.raises(DeadlineExceeded):
            solver.solve(h, backend=SerialBackend(), control=control)

    def test_backend_streams_per_job_progress(self):
        h = problem()
        seen = []
        control = ExecutionControl(
            on_job_done=lambda job_id, failed: seen.append((job_id, failed))
        )
        result = FrozenQubitsSolver(num_frozen=1, seed=3).solve(
            h, backend=SerialBackend(), control=control
        )
        assert result.best_value is not None
        assert seen, "no progress callbacks fired"
        assert all(not failed for _, failed in seen)

    def test_control_solve_matches_plain_solve(self):
        h = problem()
        plain = FrozenQubitsSolver(num_frozen=1, seed=3).solve(h)
        controlled = FrozenQubitsSolver(num_frozen=1, seed=3).solve(
            h, control=ExecutionControl(cancel=threading.Event())
        )
        assert plain.best_value == controlled.best_value
        assert np.array_equal(plain.best_spins, controlled.best_spins)


# ---------------------------------------------------------------------------
# Satellite: injectable backoff sleeper
# ---------------------------------------------------------------------------
class TestBackoffSleeper:
    def test_sleeper_is_injectable_and_restorable(self):
        slept = []
        previous = set_backoff_sleeper(slept.append)
        try:
            policy = FaultPolicy(max_retries=2, backoff_seconds=0.25)
            _backoff_sleep(policy, "job-a", 0)
            assert len(slept) == 1
            assert slept[0] > 0.0
        finally:
            set_backoff_sleeper(previous)
        assert set_backoff_sleeper(None) is time.sleep

    def test_cancel_event_preempts_the_sleeper(self):
        # With a control carrying a cancel event, backoff waits on the
        # event (interruptible) instead of the injected sleeper.
        slept = []
        previous = set_backoff_sleeper(slept.append)
        try:
            cancel = threading.Event()
            cancel.set()
            control = ExecutionControl(cancel=cancel)
            policy = FaultPolicy(max_retries=2, backoff_seconds=60.0)
            start = time.monotonic()
            _backoff_sleep(policy, "job-a", 0, control)
            assert time.monotonic() - start < 5.0
            assert slept == []
        finally:
            set_backoff_sleeper(previous)

    def test_retrying_solve_never_calls_real_sleep(self):
        calls = []
        previous = set_backoff_sleeper(calls.append)
        try:
            h = problem()
            injection = FaultInjection(fail_jobs={"sp0": 1})
            result = FrozenQubitsSolver(
                num_frozen=1,
                seed=3,
                config=SolverConfig(fault_injection=injection),
            ).solve(
                h,
                backend=SerialBackend(
                    fault_policy=FaultPolicy(
                        max_retries=2, backoff_seconds=0.5
                    )
                ),
            )
            assert result.num_job_retries >= 1
            assert calls, "retry happened but the injected sleeper never ran"
        finally:
            set_backoff_sleeper(previous)


# ---------------------------------------------------------------------------
# Satellite: root-cause traceback in failure provenance
# ---------------------------------------------------------------------------
class TestFailureTraceback:
    def test_failure_provenance_carries_formatted_traceback(self):
        h = problem()
        injection = FaultInjection(fail_jobs={"sp0": None})  # permanent
        result = FrozenQubitsSolver(
            num_frozen=1,
            seed=3,
            config=SolverConfig(fault_injection=injection),
        ).solve(
            h,
            backend=SerialBackend(fault_policy=FaultPolicy(max_retries=1)),
        )
        assert result.num_failed_jobs == 1
        provenance = result.failure_provenance
        assert len(provenance) == 1
        record = next(iter(provenance.values()))
        assert "InjectedFault" in record["traceback"]
        assert "Traceback" in record["traceback"]
        assert record["attempts"] >= 1


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=lambda: 0.0)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_half_open_probe_closes_on_success(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=10.0, clock=lambda: now[0]
        )
        breaker.record_failure()
        assert breaker.state == "open"
        now[0] = 11.0
        assert breaker.state == "half_open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_reopens_on_failure(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=10.0, clock=lambda: now[0]
        )
        breaker.record_failure()
        now[0] = 11.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_release_frees_a_cancelled_probe(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=1.0, clock=lambda: now[0]
        )
        breaker.record_failure()
        now[0] = 2.0
        assert breaker.allow()
        breaker.release()  # probe cancelled, no verdict
        assert breaker.allow()  # slot is free again


# ---------------------------------------------------------------------------
# Service orchestration (stubbed dispatch)
# ---------------------------------------------------------------------------
def _instant_execute(request, control):
    control.checkpoint("stub")
    return {"request_id": request.request_id, "seed": request.seed}


def _cooperative_slow_execute(seconds):
    """A stub that takes ``seconds`` but honours checkpoints promptly."""

    def execute(request, control):
        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline:
            control.cancel.wait(0.01)
            control.checkpoint("slow stub")
        return "done"

    return execute


class TestServiceOrchestration:
    def test_single_request_round_trip(self):
        async def scenario():
            async with SolveService(execute=_instant_execute) as service:
                result = await service.solve(problem(), seed=5)
                assert result.status == "ok"
                assert result.ok
                assert result.value["seed"] == 5
                assert result.coalesced_with == ""
                stats = service.stats()
                assert stats["dispatches"] == 1
                assert stats["ok"] == 1
            return result

        result = run(scenario())
        assert result.raise_for_status() == result.value

    def test_coalescing_many_duplicates_one_dispatch(self):
        started = threading.Event()
        release = threading.Event()

        def gated_execute(request, control):
            started.set()
            release.wait(timeout=30)
            return "shared"

        async def scenario():
            h = problem()
            async with SolveService(execute=gated_execute) as service:
                first = await service.submit(
                    SolveRequest(hamiltonian=h, seed=1)
                )
                await asyncio.to_thread(started.wait, 30)
                rest = [
                    await service.submit(SolveRequest(hamiltonian=h, seed=1))
                    for _ in range(15)
                ]
                release.set()
                results = await asyncio.gather(first, *rest)
                stats = service.stats()
                assert stats["dispatches"] == 1
                assert stats["coalesced"] == 15
                assert all(r.status == "ok" for r in results)
                assert all(r.value == "shared" for r in results)
                leader_id = results[0].request_id
                assert results[0].coalesced_with == ""
                assert all(
                    r.coalesced_with == leader_id for r in results[1:]
                )

        run(scenario())

    def test_different_seeds_do_not_coalesce(self):
        async def scenario():
            h = problem()
            async with SolveService(execute=_instant_execute) as service:
                a = await service.solve(h, seed=1)
                b = await service.solve(h, seed=2)
                assert a.value["seed"] == 1
                assert b.value["seed"] == 2
                assert service.stats()["dispatches"] == 2

        run(scenario())

    def test_overload_sheds_with_service_overloaded(self):
        release = threading.Event()

        def blocking_execute(request, control):
            release.wait(timeout=30)
            return "done"

        async def scenario():
            config = ServiceConfig(max_queue_depth=1, max_concurrency=1)
            async with SolveService(
                config, execute=blocking_execute
            ) as service:
                # Distinct problems so nothing coalesces: one runs, one
                # queued, the third must shed.
                first = await service.submit(
                    SolveRequest(hamiltonian=problem(0))
                )
                await asyncio.sleep(0.05)  # let the worker claim it
                second = await service.submit(
                    SolveRequest(hamiltonian=problem(1))
                )
                with pytest.raises(ServiceOverloaded):
                    await service.submit(SolveRequest(hamiltonian=problem(2)))
                assert service.stats()["shed"] == 1
                release.set()
                await asyncio.gather(first, second)

        run(scenario())

    def test_deadline_yields_structured_timeout_never_a_hang(self):
        async def scenario():
            async with SolveService(
                execute=_cooperative_slow_execute(30.0)
            ) as service:
                start = time.monotonic()
                result = await service.solve(
                    problem(), deadline_seconds=0.1
                )
                elapsed = time.monotonic() - start
                assert result.status == "timeout"
                assert elapsed < 10.0, "deadline did not cut the wait"
                assert isinstance(result.error, ServiceTimeout)
                assert result.error.request_id == result.request_id
                assert result.provenance["stage"] in ("queued", "running")
                assert "jobs_done" in result.provenance
                assert "elapsed_seconds" in result.provenance
                assert service.stats()["timeouts"] == 1

        run(scenario())

    def test_deadline_expires_while_queued(self):
        release = threading.Event()

        def blocking_execute(request, control):
            release.wait(timeout=30)
            control.checkpoint("blocked stub")
            return "done"

        async def scenario():
            config = ServiceConfig(max_queue_depth=4, max_concurrency=1)
            async with SolveService(
                config, execute=blocking_execute
            ) as service:
                blocker = await service.submit(
                    SolveRequest(hamiltonian=problem(0))
                )
                await asyncio.sleep(0.05)
                queued = await service.submit(
                    SolveRequest(
                        hamiltonian=problem(1), deadline_seconds=0.1
                    )
                )
                result = await queued
                assert result.status == "timeout"
                assert result.provenance["stage"] == "queued"
                release.set()
                await blocker

        run(scenario())

    def test_solve_faults_are_contained_per_request(self):
        def failing_execute(request, control):
            raise BackendError("backend exploded")

        async def scenario():
            async with SolveService(execute=failing_execute) as service:
                result = await service.solve(problem())
                assert result.status == "failed"
                assert isinstance(result.error, BackendError)
                with pytest.raises(BackendError):
                    result.raise_for_status()
                assert service.stats()["failed"] == 1

        run(scenario())

    def test_breaker_opens_and_degrades_to_classical(self):
        def failing_execute(request, control):
            raise BackendError("backend down")

        async def scenario():
            h = problem()
            config = ServiceConfig(
                breaker_failure_threshold=2,
                breaker_reset_seconds=3600.0,
                coalesce=False,
            )
            async with SolveService(
                config, execute=failing_execute
            ) as service:
                events = service.subscribe()
                for _ in range(2):
                    result = await service.solve(h, seed=1)
                    assert result.status == "failed"
                assert service.stats()["breaker_state"] == "open"
                degraded = await service.solve(h, seed=1)
                assert degraded.status == "degraded"
                assert degraded.ok
                # The classical fallback yields a real assignment.
                assert degraded.value.spins is not None
                assert service.stats()["degraded"] == 1
                kinds = []
                while not events.empty():
                    kinds.append(events.get_nowait().kind)
                assert "BreakerStateChanged" in kinds

        run(scenario())

    def test_breaker_open_without_fallback_is_unavailable(self):
        def failing_execute(request, control):
            raise BackendError("backend down")

        async def scenario():
            config = ServiceConfig(
                breaker_failure_threshold=1,
                breaker_reset_seconds=3600.0,
                classical_fallback=False,
                coalesce=False,
            )
            async with SolveService(
                config, execute=failing_execute
            ) as service:
                await service.solve(problem(), seed=1)
                result = await service.solve(problem(), seed=1)
                assert result.status == "failed"
                assert isinstance(result.error, ServiceUnavailable)

        run(scenario())

    def test_breaker_half_open_probe_recovers(self):
        calls = {"n": 0}

        def flaky_then_healthy(request, control):
            calls["n"] += 1
            if calls["n"] <= 1:
                raise BackendError("first dispatch dies")
            return "healthy"

        async def scenario():
            config = ServiceConfig(
                breaker_failure_threshold=1,
                breaker_reset_seconds=0.0,  # immediate half-open
                coalesce=False,
            )
            async with SolveService(
                config, execute=flaky_then_healthy
            ) as service:
                first = await service.solve(problem(0), seed=1)
                assert first.status == "failed"
                probe = await service.solve(problem(1), seed=1)
                assert probe.status == "ok"
                assert service.stats()["breaker_state"] == "closed"

        run(scenario())

    def test_cancellation_does_not_feed_the_breaker(self):
        async def scenario():
            config = ServiceConfig(breaker_failure_threshold=1)
            async with SolveService(
                config, execute=_cooperative_slow_execute(30.0)
            ) as service:
                result = await service.solve(
                    problem(), deadline_seconds=0.05
                )
                assert result.status == "timeout"
                stats = service.stats()
                assert stats["breaker_state"] == "closed"
                assert stats["breaker_consecutive_failures"] == 0

        run(scenario())

    def test_drain_finishes_in_flight_and_rejects_new(self):
        release = threading.Event()

        def gated_execute(request, control):
            release.wait(timeout=30)
            return "finished"

        async def scenario():
            async with SolveService(execute=gated_execute) as service:
                future = await service.submit(
                    SolveRequest(hamiltonian=problem())
                )
                await asyncio.sleep(0.05)
                drain_task = asyncio.create_task(service.drain())
                await asyncio.sleep(0.05)
                with pytest.raises(ServiceClosed):
                    await service.submit(SolveRequest(hamiltonian=problem()))
                release.set()
                await drain_task
                assert future.done()
                result = future.result()
                assert result.status == "ok"
                assert result.value == "finished"
                assert service.stats()["draining"]

        run(scenario())

    def test_event_stream_covers_the_request_lifecycle(self):
        async def scenario():
            async with SolveService(execute=_instant_execute) as service:
                events = service.subscribe()
                await service.solve(problem(), seed=1)
                kinds = []
                while not events.empty():
                    event = events.get_nowait()
                    kinds.append(type(event))
                assert RequestAdmitted in kinds
                assert RequestStarted in kinds
                assert RequestFinished in kinds
                service.unsubscribe(events)

        run(scenario())

    def test_coalesced_event_names_the_leader(self):
        started = threading.Event()
        release = threading.Event()

        def gated_execute(request, control):
            started.set()
            release.wait(timeout=30)
            return "x"

        async def scenario():
            h = problem()
            async with SolveService(execute=gated_execute) as service:
                events = service.subscribe()
                leader = await service.submit(
                    SolveRequest(hamiltonian=h, request_id="lead")
                )
                await asyncio.to_thread(started.wait, 30)
                sibling = await service.submit(
                    SolveRequest(hamiltonian=h, request_id="tail")
                )
                release.set()
                await asyncio.gather(leader, sibling)
                coalesced = []
                while not events.empty():
                    event = events.get_nowait()
                    if isinstance(event, RequestCoalesced):
                        coalesced.append(event)
                assert len(coalesced) == 1
                assert coalesced[0].request_id == "tail"
                assert coalesced[0].leader_id == "lead"

        run(scenario())

    def test_service_fault_injection_fail_requests(self):
        async def scenario():
            config = ServiceConfig(
                fault_injection=FaultInjection(
                    fail_requests={"victim": None}
                ),
            )
            async with SolveService(
                config, execute=_instant_execute
            ) as service:
                ok = await service.solve(problem(0), request_id="fine")
                assert ok.status == "ok"
                doomed = await service.solve(
                    problem(1), request_id="victim"
                )
                assert doomed.status == "failed"
                assert isinstance(doomed.error, InjectedFault)

        run(scenario())

    def test_service_fault_injection_slow_requests(self):
        async def scenario():
            config = ServiceConfig(
                fault_injection=FaultInjection(
                    slow_requests={"sleepy": 30.0}
                ),
            )
            async with SolveService(
                config, execute=_instant_execute
            ) as service:
                start = time.monotonic()
                result = await service.solve(
                    problem(),
                    request_id="sleepy",
                    deadline_seconds=0.1,
                )
                assert result.status == "timeout"
                assert time.monotonic() - start < 10.0

        run(scenario())


# ---------------------------------------------------------------------------
# Acceptance: real solves through the service
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestServiceAcceptance:
    def test_64_duplicates_bit_identical_and_at_most_two_runs(self):
        h = problem(nodes=8)
        direct = FrozenQubitsSolver(num_frozen=1, seed=11).solve(h)

        dispatches = {"n": 0}
        real_execute_lock = threading.Lock()

        def counting_execute(request, control):
            with real_execute_lock:
                dispatches["n"] += 1
            from repro.service.service import default_execute

            return default_execute(request, control)

        async def scenario():
            config = ServiceConfig(max_queue_depth=128, max_concurrency=4)
            async with SolveService(
                config, execute=counting_execute
            ) as service:
                futures = [
                    await service.submit(
                        SolveRequest(hamiltonian=h, num_frozen=1, seed=11)
                    )
                    for _ in range(64)
                ]
                return await asyncio.gather(*futures)

        results = run(scenario())
        assert len(results) == 64
        assert all(r.status == "ok" for r in results)
        assert dispatches["n"] <= 2, (
            f"64 identical requests cost {dispatches['n']} training runs"
        )
        for r in results:
            assert float(r.value.best_value) == float(direct.best_value)
            assert np.array_equal(r.value.best_spins, direct.best_spins)

    def test_chaos_requests_survive_with_retries(self):
        h = problem(nodes=8)
        injection = FaultInjection(fail_jobs={"sp0": 1})
        backend = SerialBackend(
            fault_policy=FaultPolicy(max_retries=2)
        )

        async def scenario():
            async with SolveService() as service:
                return await service.solve(
                    h,
                    num_frozen=1,
                    seed=11,
                    backend=backend,
                    solver_options={
                        "config": SolverConfig(fault_injection=injection)
                    },
                )

        result = run(scenario())
        assert result.status == "ok"
        assert result.value.num_job_retries >= 1
        assert result.value.num_failed_jobs == 0
