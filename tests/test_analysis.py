"""Tests for repro.analysis: EPS, runtime model, metrics, trade-off."""

import numpy as np
import pytest

from repro.analysis import (
    EXECUTION_MODELS,
    ErrorModel,
    OPTIMISTIC_ERROR_MODEL,
    WorkloadTiming,
    detect_plateau,
    expected_probability_of_success,
    geometric_mean,
    improvement_factor,
    overall_runtime_hours,
    relative_series,
    tradeoff_curve,
)
from repro.analysis.eps import relative_eps_log10
from repro.circuit import QuantumCircuit
from repro.exceptions import ReproError, SimulationError


def cx_chain(num_cx: int, num_qubits: int = 2) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits)
    for __ in range(num_cx):
        circuit.cx(0, 1)
    return circuit


class TestEps:
    def test_paper_error_model_defaults(self):
        assert OPTIMISTIC_ERROR_MODEL.cx_error == 0.001
        assert OPTIMISTIC_ERROR_MODEL.readout_error == 0.005
        assert OPTIMISTIC_ERROR_MODEL.decoherence_us == 500.0

    def test_gate_errors_compound(self):
        few = expected_probability_of_success(cx_chain(10))
        many = expected_probability_of_success(cx_chain(100))
        assert many < few < 1.0

    def test_exact_value_no_decoherence(self):
        model = ErrorModel(cx_error=0.01, readout_error=0.0,
                           decoherence_us=1e12, single_qubit_error=0.0)
        eps = expected_probability_of_success(cx_chain(10), model)
        assert eps == pytest.approx(0.99**10, rel=1e-9)

    def test_readout_counts_active_qubits(self):
        model = ErrorModel(cx_error=0.0, readout_error=0.1,
                           decoherence_us=1e12, single_qubit_error=0.0)
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)  # only 2 active qubits
        eps = expected_probability_of_success(circuit, model)
        assert eps == pytest.approx(0.9**2, rel=1e-9)

    def test_rz_and_barrier_free(self):
        model = ErrorModel(cx_error=0.5, readout_error=0.0,
                           decoherence_us=1e12, single_qubit_error=0.5)
        circuit = QuantumCircuit(2)
        circuit.rz(0.3, 0)
        circuit.barrier()
        assert expected_probability_of_success(circuit, model) == pytest.approx(1.0)

    def test_decoherence_scales_with_depth(self):
        model = ErrorModel(cx_error=0.0, readout_error=0.0,
                           decoherence_us=1.0, single_qubit_error=0.0)
        shallow = expected_probability_of_success(cx_chain(1), model)
        deep = expected_probability_of_success(cx_chain(20), model)
        # 20 serial CX = 8 us against T=1 us on two qubits.
        assert deep < shallow
        assert shallow == pytest.approx(np.exp(-0.4 / 1.0) ** 2, rel=1e-6)

    def test_log_space_stability_at_scale(self):
        """500-qubit-scale circuits underflow linear EPS; log-space works."""
        huge = cx_chain(120_000)
        log_eps = expected_probability_of_success(huge, log_space=True)
        assert log_eps < -50.0
        # Linear EPS is astronomically small; the log form carries the
        # magnitude without precision loss.
        assert expected_probability_of_success(huge) < 1e-50
        assert expected_probability_of_success(huge) == pytest.approx(
            10.0**log_eps, rel=1e-6
        )

    def test_relative_eps_prefers_smaller_circuit(self):
        assert relative_eps_log10(cx_chain(10), cx_chain(100)) > 0.0

    def test_bad_error_model_rejected(self):
        with pytest.raises(SimulationError):
            ErrorModel(cx_error=1.5)
        with pytest.raises(SimulationError):
            ErrorModel(decoherence_us=0.0)


class TestRuntimeModel:
    def test_four_execution_models_exist(self):
        assert set(EXECUTION_MODELS) == {
            "sequential+shared", "sequential+dedicated",
            "batched+shared", "batched+dedicated",
        }

    def test_shared_slower_than_dedicated(self):
        shared = overall_runtime_hours(1, EXECUTION_MODELS["sequential+shared"])
        dedicated = overall_runtime_hours(
            1, EXECUTION_MODELS["sequential+dedicated"]
        )
        assert shared > dedicated

    def test_batching_amortises_cloud_latency(self):
        """Fig. 18: with batching, FQ(m=10)'s 512 circuits pay the cloud
        latency once per iteration, not 512 times."""
        sequential = overall_runtime_hours(512, EXECUTION_MODELS["sequential+shared"])
        batched = overall_runtime_hours(512, EXECUTION_MODELS["batched+shared"])
        # 512 jobs/iteration collapse to 1; the remaining gap is trial time.
        assert batched < sequential / 10

    def test_baseline_paper_scale(self):
        """Baseline on sequential+shared: ~1000 iterations x 30 min latency
        => order 500 hours; sanity-check the magnitude."""
        hours = overall_runtime_hours(1, EXECUTION_MODELS["sequential+shared"])
        assert 400 < hours < 1000

    def test_dedicated_batched_dominated_by_trials(self):
        timing = WorkloadTiming()
        hours = overall_runtime_hours(1, EXECUTION_MODELS["batched+dedicated"], timing)
        trial_hours = timing.iterations * timing.trials * timing.trial_seconds / 3600
        assert hours == pytest.approx(
            trial_hours
            + (timing.compile_seconds
               + timing.iterations * timing.optimizer_seconds_per_iteration
               + timing.postprocess_seconds) / 3600,
            rel=1e-9,
        )

    def test_invalid_circuit_count(self):
        with pytest.raises(ReproError):
            overall_runtime_hours(0, EXECUTION_MODELS["batched+shared"])


class TestMetrics:
    def test_improvement_factor(self):
        assert improvement_factor(80.0, 10.0) == 8.0

    def test_improvement_factor_guards(self):
        with pytest.raises(ReproError):
            improvement_factor(1.0, 0.0)
        with pytest.raises(ReproError):
            improvement_factor(-1.0, 1.0)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([5.0]) == pytest.approx(5.0)

    def test_geometric_mean_guards(self):
        with pytest.raises(ReproError):
            geometric_mean([])
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])

    def test_relative_series(self):
        assert relative_series([10.0, 5.0], 10.0) == [1.0, 0.5]
        with pytest.raises(ReproError):
            relative_series([1.0], 0.0)


class TestTradeoff:
    def test_curve_structure(self):
        curve = tradeoff_curve([100.0, 50.0, 30.0, 28.0])
        assert [p.quantum_cost for p in curve] == [1, 2, 4, 8]
        assert curve[0].relative_value == 1.0
        assert curve[2].relative_value == pytest.approx(0.3)

    def test_curve_guards(self):
        with pytest.raises(ReproError):
            tradeoff_curve([])
        with pytest.raises(ReproError):
            tradeoff_curve([0.0, 1.0])

    def test_plateau_detection(self):
        """Marginal gains below threshold after m=2 => knee at 2."""
        curve = tradeoff_curve([100.0, 60.0, 40.0, 39.5, 39.2])
        assert detect_plateau(curve, threshold=0.05) == 2

    def test_plateau_no_gain(self):
        curve = tradeoff_curve([100.0, 100.0, 100.0])
        assert detect_plateau(curve) == 0

    def test_plateau_threshold_guard(self):
        with pytest.raises(ReproError):
            detect_plateau([], threshold=-0.1)
