"""Tests for the analytic-gradient training engine.

Three layers of evidence:

* the adjoint-mode kernel (``qaoa_value_and_grad``) and the closed-form
  p=1 derivatives (``qaoa1_expectation_and_grad``) agree with central
  finite differences to <= 1e-8 on seeded power-law instances and on the
  h-only / J-only / isolated-qubit / noisy-weights edge cases;
* the two gradient paths agree with each other at p=1, and the returned
  values are bit-compatible with the legacy ``evaluate_ideal`` /
  ``evaluate_noisy`` objectives;
* the L-BFGS-B training path converges in fewer objective evaluations at
  an equal-or-better value than the pinned Nelder-Mead reference, counts
  its gradient evaluations separately, and is bit-identical across the
  serial, process-pool, and batched execution backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FrozenQubitsSolver, SolverConfig
from repro.devices import get_backend
from repro.graphs.generators import barabasi_albert_graph
from repro.ising.hamiltonian import IsingHamiltonian
from repro.qaoa import (
    make_context,
    optimize_qaoa,
    qaoa1_expectation_and_grad,
    value_and_grad_objective,
)
from repro.qaoa.executor import evaluate_ideal, evaluate_noisy
from repro.sim.qaoa_kernel import qaoa_value_and_grad

FD_TOL = 1e-8
VALUE_TOL = 1e-12


def random_powerlaw_instance(
    seed: int, num_qubits: int = 7, attachment: int = 2
) -> IsingHamiltonian:
    """A seeded BA instance with ±1 couplings and mixed-sparsity h."""
    rng = np.random.default_rng(seed)
    graph = barabasi_albert_graph(num_qubits, attachment, seed=seed)
    base = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=seed + 1)
    linear = rng.normal(size=num_qubits) * (rng.random(num_qubits) < 0.6)
    return IsingHamiltonian(
        num_qubits,
        linear=linear,
        quadratic=base.quadratic,
        offset=float(rng.normal()),
    )


EDGE_CASES = [
    # h-only: no quadratic terms at all.
    IsingHamiltonian(3, linear=[0.7, -1.2, 0.4], offset=1.5),
    # J-only: the paper's benchmark shape (h = 0 everywhere).
    IsingHamiltonian(4, quadratic={(0, 1): 1.0, (1, 2): -1.0, (2, 3): 1.0}),
    # Isolated qubits: qubit 2 carries no term, qubit 3 only a linear one.
    IsingHamiltonian(
        4, linear=[0.0, 0.5, 0.0, -0.8], quadratic={(0, 1): -1.0}, offset=-0.3
    ),
    # Single qubit.
    IsingHamiltonian(1, linear=[0.9]),
]


def central_difference(fn, gammas, betas, step=1e-6):
    """Central finite differences of ``fn(gammas, betas)`` in all 2p params."""
    gammas = np.asarray(gammas, dtype=float)
    betas = np.asarray(betas, dtype=float)
    point = np.concatenate([gammas, betas])
    grad = np.zeros(point.size)
    p = gammas.size
    for idx in range(point.size):
        plus, minus = point.copy(), point.copy()
        plus[idx] += step
        minus[idx] -= step
        grad[idx] = (
            fn(plus[:p], plus[p:]) - fn(minus[:p], minus[p:])
        ) / (2 * step)
    return grad


def adjoint_flat(hamiltonian, gammas, betas, observable=None):
    value, grad_g, grad_b = qaoa_value_and_grad(
        hamiltonian, np.asarray(gammas), np.asarray(betas), observable=observable
    )
    return value, np.concatenate([grad_g, grad_b])


class TestAdjointKernel:
    @pytest.mark.parametrize("num_layers", [1, 2, 3])
    def test_matches_finite_differences(self, num_layers):
        rng = np.random.default_rng(100 + num_layers)
        for seed in range(4):
            h = random_powerlaw_instance(seed)
            gammas = rng.uniform(-2, 2, num_layers)
            betas = rng.uniform(-2, 2, num_layers)
            _, grad = adjoint_flat(h, gammas, betas)
            fd = central_difference(
                lambda g, b: qaoa_value_and_grad(h, g, b)[0], gammas, betas
            )
            assert np.max(np.abs(grad - fd)) < FD_TOL

    @pytest.mark.parametrize("hamiltonian", EDGE_CASES)
    def test_edge_cases(self, hamiltonian):
        rng = np.random.default_rng(17)
        gammas = rng.uniform(-2, 2, 2)
        betas = rng.uniform(-2, 2, 2)
        _, grad = adjoint_flat(hamiltonian, gammas, betas)
        fd = central_difference(
            lambda g, b: qaoa_value_and_grad(hamiltonian, g, b)[0], gammas, betas
        )
        assert np.max(np.abs(grad - fd)) < FD_TOL

    def test_value_matches_legacy_objective(self):
        rng = np.random.default_rng(23)
        for seed in range(3):
            h = random_powerlaw_instance(seed)
            context = make_context(h, num_layers=2)
            gammas = rng.uniform(-2, 2, 2)
            betas = rng.uniform(-2, 2, 2)
            value, _ = adjoint_flat(h, gammas, betas)
            assert abs(value - evaluate_ideal(context, gammas, betas)) < VALUE_TOL

    def test_noisy_observable_matches_finite_differences(self):
        h = random_powerlaw_instance(3, num_qubits=5)
        context = make_context(h, num_layers=2, device=get_backend("montreal"))
        assert context.fidelity < 1.0  # the scenario must exercise noise
        fn = value_and_grad_objective(context, noisy=True)
        rng = np.random.default_rng(29)
        gammas = rng.uniform(-2, 2, 2)
        betas = rng.uniform(-2, 2, 2)
        value, grad = fn(gammas, betas)
        assert abs(value - evaluate_noisy(context, gammas, betas)) < VALUE_TOL
        fd = central_difference(
            lambda g, b: evaluate_noisy(context, g, b), gammas, betas
        )
        assert np.max(np.abs(grad - fd)) < FD_TOL


class TestClosedFormP1:
    def test_matches_finite_differences(self):
        for seed in range(6):
            h = random_powerlaw_instance(seed)
            rng = np.random.default_rng(1000 + seed)
            gamma, beta = rng.uniform(-2, 2, 2)
            value, dgamma, dbeta = qaoa1_expectation_and_grad(h, gamma, beta)
            fd = central_difference(
                lambda g, b: qaoa1_expectation_and_grad(h, g[0], b[0])[0],
                [gamma],
                [beta],
            )
            assert abs(dgamma - fd[0]) < FD_TOL
            assert abs(dbeta - fd[1]) < FD_TOL

    @pytest.mark.parametrize("hamiltonian", EDGE_CASES)
    def test_edge_cases(self, hamiltonian):
        rng = np.random.default_rng(31)
        gamma, beta = rng.uniform(-2, 2, 2)
        _, dgamma, dbeta = qaoa1_expectation_and_grad(hamiltonian, gamma, beta)
        fd = central_difference(
            lambda g, b: qaoa1_expectation_and_grad(hamiltonian, g[0], b[0])[0],
            [gamma],
            [beta],
        )
        assert abs(dgamma - fd[0]) < FD_TOL
        assert abs(dbeta - fd[1]) < FD_TOL

    def test_agrees_with_adjoint_kernel(self):
        """Closed form and statevector adjoint are two derivations of one
        function — they must agree far below the FD bar."""
        rng = np.random.default_rng(37)
        for seed in range(4):
            h = random_powerlaw_instance(seed)
            gamma, beta = rng.uniform(-2, 2, 2)
            value, dgamma, dbeta = qaoa1_expectation_and_grad(h, gamma, beta)
            adj_value, adj_grad = adjoint_flat(h, [gamma], [beta])
            assert abs(value - adj_value) < 1e-10
            assert abs(dgamma - adj_grad[0]) < 1e-10
            assert abs(dbeta - adj_grad[1]) < 1e-10

    def test_gradient_at_critical_cosines(self):
        """gamma hitting cos(2*gamma*J) = 0 exactly: the leave-one-out
        products must stay finite (no division by the vanishing cosine)."""
        h = IsingHamiltonian(3, [0.5, 0.0, 0.0], {(0, 1): 1.0, (1, 2): 1.0})
        gamma = np.pi / 4  # cos(2*gamma*1.0) == 0
        value, dgamma, dbeta = qaoa1_expectation_and_grad(h, gamma, 0.3)
        assert np.isfinite(value) and np.isfinite(dgamma) and np.isfinite(dbeta)
        fd = central_difference(
            lambda g, b: qaoa1_expectation_and_grad(h, g[0], b[0])[0],
            [gamma],
            [0.3],
        )
        assert abs(dgamma - fd[0]) < FD_TOL
        assert abs(dbeta - fd[1]) < FD_TOL

    def test_noisy_weights_p1(self):
        h = random_powerlaw_instance(5, num_qubits=5)
        context = make_context(h, device=get_backend("montreal"))
        fn = value_and_grad_objective(context, noisy=True)
        rng = np.random.default_rng(41)
        gamma, beta = rng.uniform(-2, 2, 2)
        value, grad = fn(np.array([gamma]), np.array([beta]))
        assert abs(value - evaluate_noisy(context, [gamma], [beta])) < VALUE_TOL
        fd = central_difference(
            lambda g, b: evaluate_noisy(context, g, b), [gamma], [beta]
        )
        assert np.max(np.abs(grad - fd)) < FD_TOL


class TestValueAndGradObjective:
    def test_requires_vectorized_context(self):
        h = EDGE_CASES[1]
        scalar = make_context(h, vectorized=False)
        assert value_and_grad_objective(scalar) is None

    def test_ideal_matches_legacy_objective(self):
        rng = np.random.default_rng(43)
        for num_layers in (1, 2):
            h = random_powerlaw_instance(2, num_qubits=6)
            context = make_context(h, num_layers=num_layers)
            fn = value_and_grad_objective(context)
            gammas = rng.uniform(-2, 2, num_layers)
            betas = rng.uniform(-2, 2, num_layers)
            value, grad = fn(gammas, betas)
            assert grad.shape == (2 * num_layers,)
            assert abs(value - evaluate_ideal(context, gammas, betas)) < VALUE_TOL


class TestLBFGSTraining:
    def _arms(self, num_layers=2, seed=47):
        h = random_powerlaw_instance(4, num_qubits=6)
        context = make_context(h, num_layers=num_layers)

        def run(value_and_grad):
            return optimize_qaoa(
                lambda g, b: evaluate_ideal(context, g, b),
                num_layers=num_layers,
                grid_resolution=6,
                num_starts=2,
                maxiter=60,
                seed=seed,
                value_and_grad=value_and_grad,
            )

        gradient = run(value_and_grad_objective(context))
        legacy = run(None)
        return gradient, legacy

    def test_fewer_evaluations_at_equal_or_better_value(self):
        gradient, legacy = self._arms()
        assert gradient.value <= legacy.value + 1e-9
        assert gradient.num_evaluations < legacy.num_evaluations

    def test_gradient_evaluations_counted_separately(self):
        gradient, legacy = self._arms()
        assert gradient.num_gradient_evaluations > 0
        assert gradient.num_gradient_evaluations <= gradient.num_evaluations
        assert legacy.num_gradient_evaluations == 0


def _solve_fingerprint(result):
    """Bit-exact comparable record of a solve."""
    return (
        tuple(result.best_spins),
        result.best_value.hex(),
        result.ev_ideal.hex(),
        result.ev_noisy.hex(),
        result.num_optimizer_evaluations,
        result.num_gradient_evaluations,
        tuple(
            (o.subproblem.index, o.ev_ideal.hex(), tuple(o.best_spins))
            for o in result.outcomes
        ),
    )


class TestSolverIntegration:
    def _solve(self, backend, **config_kwargs):
        graph = barabasi_albert_graph(8, attachment=1, seed=51)
        problem = IsingHamiltonian.from_graph(
            graph, weights="random_pm1", seed=52
        )
        solver = FrozenQubitsSolver(
            num_frozen=2,
            config=SolverConfig(
                num_layers=2,
                grid_resolution=4,
                maxiter=8,
                shots=256,
                **config_kwargs,
            ),
            seed=2025,
        )
        return solver.solve(problem, get_backend("montreal"), backend=backend)

    def test_gradient_training_flag(self):
        assert SolverConfig().gradient_training
        assert not SolverConfig(analytic_gradients=False).gradient_training
        # Gradients need the vectorized evaluation engine underneath.
        assert not SolverConfig(vectorized_evaluation=False).gradient_training

    def test_gradient_evaluations_accounted(self):
        result = self._solve("serial")
        assert result.num_gradient_evaluations > 0
        legacy = self._solve("serial", analytic_gradients=False)
        assert legacy.num_gradient_evaluations == 0

    def test_bit_identical_across_backends(self):
        """The L-BFGS training path runs per-job in every backend, so the
        full solve must be reproducible flip-for-flip across them."""
        serial = _solve_fingerprint(self._solve("serial"))
        batched = _solve_fingerprint(self._solve("batched"))
        process = _solve_fingerprint(self._solve("process"))
        assert serial == batched
        assert serial == process

    def test_legacy_pin_restores_nelder_mead(self):
        """analytic_gradients=False must reproduce the pre-gradient-engine
        behaviour: same config as before the flag existed."""
        pinned = self._solve("serial", analytic_gradients=False)
        again = self._solve("serial", analytic_gradients=False)
        assert _solve_fingerprint(pinned) == _solve_fingerprint(again)
