"""Edge-case and failure-injection tests for the FrozenQubits pipeline.

Covers the corners the happy-path tests skip: degenerate graphs, frozen
hotspots that disconnect the problem, zero-edge sub-problems, devices that
are too small, hostile calibrations, and metric degeneracies.
"""

import pytest

from repro.core import FrozenQubitsSolver, SolverConfig, select_hotspots
from repro.core.partition import executed_subproblems, partition_problem
from repro.devices import CouplingMap, Device, uniform_calibration
from repro.devices.topologies import linear_coupling
from repro.exceptions import QAOAError, TranspileError
from repro.graphs.generators import ring_graph, star_graph
from repro.ising import IsingHamiltonian, brute_force_minimum
from repro.qaoa import approximation_ratio_gap, build_qaoa_template
from repro.qaoa.executor import evaluate_noisy, make_context
from repro.transpile import transpile

FAST = SolverConfig(shots=512, grid_resolution=6, maxiter=20)


class TestDegenerateProblems:
    def test_two_qubit_problem(self):
        h = IsingHamiltonian(2, quadratic={(0, 1): 1.0})
        result = FrozenQubitsSolver(num_frozen=1, config=FAST, seed=0).solve(h)
        assert result.best_value == -1.0

    def test_problem_with_isolated_qubit(self):
        """A qubit with no terms at all still appears in decoded solutions."""
        h = IsingHamiltonian(4, quadratic={(0, 1): 1.0, (1, 2): -1.0})
        result = FrozenQubitsSolver(num_frozen=1, config=FAST, seed=1).solve(h)
        assert len(result.best_spins) == 4
        assert result.best_value == pytest.approx(brute_force_minimum(h).value)

    def test_freezing_disconnects_graph(self):
        """Freezing a ring node leaves a path — still solvable end to end."""
        h = IsingHamiltonian.from_graph(ring_graph(6), weights="random_pm1", seed=2)
        result = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=2).solve(h)
        assert result.best_value == pytest.approx(brute_force_minimum(h).value)

    def test_star_frozen_hub_leaves_empty_subproblem_edges(self):
        h = IsingHamiltonian.from_graph(star_graph(6))
        parts = partition_problem(h, select_hotspots(h, 1))
        sub = executed_subproblems(parts)[0].hamiltonian
        assert sub.num_terms == 0
        assert not sub.has_zero_linear()  # hub's edges became fields

    def test_all_negative_couplings_ferromagnet(self):
        """Ferromagnetic chain: ground state is the two aligned states."""
        h = IsingHamiltonian(5, quadratic={(i, i + 1): -1.0 for i in range(4)})
        result = FrozenQubitsSolver(num_frozen=1, config=FAST, seed=3).solve(h)
        assert result.best_value == -4.0
        assert len(set(result.best_spins)) == 1  # fully aligned


class TestHostileDevices:
    def test_device_too_small_raises(self):
        h = IsingHamiltonian.from_graph(ring_graph(8))
        coupling = linear_coupling(4)
        device = Device("tiny", coupling, uniform_calibration(coupling))
        template = build_qaoa_template(h)
        with pytest.raises(TranspileError):
            transpile(template.circuit, device)

    def test_disconnected_device_rejected(self):
        coupling = CouplingMap(4, [(0, 1), (2, 3)])
        device = Device("split", coupling, uniform_calibration(coupling))
        h = IsingHamiltonian(3, quadratic={(0, 1): 1.0, (1, 2): 1.0})
        template = build_qaoa_template(h)
        with pytest.raises(TranspileError):
            transpile(template.circuit, device)

    def test_maximally_noisy_device_collapses_to_offset(self):
        """With CX error ~50%, the noisy EV sits at the offset and ARG ~100."""
        coupling = linear_coupling(6)
        device = Device(
            "terrible",
            coupling,
            uniform_calibration(coupling, cx_error=0.5, readout_error=0.4),
        )
        h = IsingHamiltonian(
            6, quadratic={(i, i + 1): 1.0 for i in range(5)}, offset=0.0
        )
        context = make_context(h, device=device)
        noisy = evaluate_noisy(context, [0.5], [0.4])
        assert abs(noisy) < 0.05
        ideal = -1.0  # any non-trivial ideal EV
        assert approximation_ratio_gap(ideal, noisy) > 90.0

    def test_perfect_device_matches_ideal(self):
        coupling = linear_coupling(5)
        device = Device(
            "perfect",
            coupling,
            uniform_calibration(
                coupling, cx_error=0.0, readout_error=0.0,
                t1_us=1e15, t2_us=1e15, single_qubit_error=0.0,
            ),
        )
        h = IsingHamiltonian(5, quadratic={(i, i + 1): 1.0 for i in range(4)})
        context = make_context(h, device=device)
        from repro.qaoa.executor import evaluate_ideal

        gammas, betas = [0.7], [0.3]
        assert evaluate_noisy(context, gammas, betas) == pytest.approx(
            evaluate_ideal(context, gammas, betas), abs=1e-9
        )


class TestMetricDegeneracies:
    def test_zero_ideal_ev_skipped_by_sweeps(self):
        """arg_sweep drops instances whose ideal EV is ~0 instead of
        dividing by zero."""
        from repro.experiments.figures import _arg_of_workload
        from repro.experiments.workloads import WorkloadInstance
        from repro.graphs.model import ProblemGraph

        # A problem whose optimal p=1 EV is ~0: single qubit, no terms.
        graph = ProblemGraph(2, [(0, 1)])
        h = IsingHamiltonian(2)  # no terms at all => EV identically 0
        workload = WorkloadInstance("degenerate", "ba1", 2, 0, graph, h)
        from repro.devices import get_backend

        result = _arg_of_workload(
            workload, get_backend("montreal"), 0, FAST, seed=0
        )
        assert result is None

    def test_m_larger_than_problem_skipped(self):
        from repro.experiments.figures import _arg_of_workload
        from repro.experiments.workloads import ba_suite
        from repro.devices import get_backend

        workload = ba_suite(sizes=(4,), trials=1, seed=0)[0]
        assert _arg_of_workload(
            workload, get_backend("montreal"), 4, FAST, seed=0
        ) is None

    def test_zero_layer_template_rejected(self):
        with pytest.raises(QAOAError):
            build_qaoa_template(IsingHamiltonian(2, quadratic={(0, 1): 1.0}), 0)
