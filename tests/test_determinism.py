"""End-to-end determinism regression: one seed, one result — everywhere.

The solver's contract (ISSUE 3 satellite): with the same seed, a
``FrozenQubitsResult`` is bit-identical across

* execution backends (serial vs process-pool vs batched at p=1),
* caching modes (off vs cold cache vs warm cache vs disk-warmed cache),
* dedup/fallback paths (budget-pruned cells, warm starts off).

"Bit-identical" is checked on every scientific field: spins, values,
expectations (exact float equality, no tolerances), decoded per-outcome
histograms, and executed-circuit accounting. Cache bookkeeping fields
(``cache_stats``, ``num_optimizer_evaluations``, ``num_deduplicated``) are
deliberately excluded — skipping redundant optimizer work is the cache's
entire point.
"""

from __future__ import annotations

import pytest

from repro.backend import (
    BatchedStatevectorBackend,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.cache import SolveCache
from repro.core import FrozenQubitsSolver, SolverConfig, solve_many
from repro.core.solver import FrozenQubitsResult
from repro.devices import get_backend
from repro.graphs.generators import barabasi_albert_graph
from repro.ising.hamiltonian import IsingHamiltonian
from repro.planning import ExecutionBudget


@pytest.fixture
def problem() -> IsingHamiltonian:
    graph = barabasi_albert_graph(8, attachment=2, seed=31)
    return IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=32)


CONFIG = SolverConfig(grid_resolution=3, maxiter=4, shots=256)


def result_signature(result: FrozenQubitsResult) -> tuple:
    """Every scientific field of a result, exactly (no tolerances)."""
    outcomes = tuple(
        (
            outcome.subproblem.index,
            outcome.source,
            outcome.best_spins,
            outcome.best_value,
            outcome.ev_ideal if outcome.ev_ideal == outcome.ev_ideal else "nan",
            outcome.ev_noisy if outcome.ev_noisy == outcome.ev_noisy else "nan",
            tuple(sorted(outcome.decoded_counts.items()))
            if outcome.decoded_counts is not None
            else None,
        )
        for outcome in result.outcomes
    )
    return (
        tuple(result.frozen_qubits),
        result.best_spins,
        result.best_value,
        result.ev_ideal,
        result.ev_noisy,
        result.num_circuits_executed,
        result.skipped_assignments,
        result.edited_circuits,
        outcomes,
    )


def solve(problem, *, backend="serial", cache=False, device=True, **kwargs):
    solver = FrozenQubitsSolver(
        num_frozen=2, config=CONFIG, seed=77, cache=cache, **kwargs
    )
    return solver.solve(
        problem, get_backend("montreal") if device else None, backend=backend
    )


def test_backends_bit_identical_with_and_without_cache(problem):
    reference = result_signature(solve(problem))
    assert result_signature(
        solve(problem, backend=ProcessPoolBackend(max_workers=2))
    ) == reference
    cache = SolveCache()
    assert result_signature(solve(problem, cache=cache)) == reference
    # Warm cache, different backend: params/transpiles now come from the
    # store and only sampling runs — still bit-identical.
    assert result_signature(
        solve(problem, backend=ProcessPoolBackend(max_workers=2), cache=cache)
    ) == reference
    assert result_signature(
        solve(problem, backend=BatchedStatevectorBackend(), cache=cache)
    ) == reference


def test_disk_warmed_cache_bit_identical(problem, tmp_path):
    reference = result_signature(solve(problem))
    writer = SolveCache(cache_dir=str(tmp_path))
    assert result_signature(solve(problem, cache=writer)) == reference
    # A brand-new process would see only the artifact directory: model that
    # with a fresh cache instance over the same dir (memory tier empty).
    reader = SolveCache(cache_dir=str(tmp_path))
    warmed = solve(problem, cache=reader)
    assert result_signature(warmed) == reference
    stats = reader.stats_snapshot()
    assert stats["params"]["disk_hits"] > 0
    assert stats["transpiled"]["disk_hits"] == 1


def test_budgeted_solve_with_classical_fallback_bit_identical(problem):
    budget = ExecutionBudget(max_circuits=1)
    reference = result_signature(solve(problem, budget=budget))
    assert reference[6] != ()  # the budget really pruned something
    cache = SolveCache()
    assert result_signature(solve(problem, budget=budget, cache=cache)) == reference
    warmed = solve(problem, budget=budget, cache=cache)
    assert result_signature(warmed) == reference
    # Probe + fallback anneals replayed from the store on the warm pass.
    assert cache.stats_snapshot()["anneal"]["memory_hits"] > 0


def test_asymmetric_parent_dedups_identical_siblings_bit_identically():
    """A hub with h-only couplings makes sibling cells collide exactly."""
    # Qubit 0 is the sole hotspot; freezing it leaves siblings differing
    # only through 0's couplings — with J(0,*) = 0 they are *identical*,
    # so the dedup path must fire and must not change any bit.
    problem = IsingHamiltonian(
        5,
        linear={1: 0.5, 2: -1.0},
        quadratic={(1, 2): 1.0, (2, 3): -1.0, (3, 4): 1.0, (1, 4): 1.0},
    )
    # Pin the frozen qubit to the uncoupled one via an explicit plan.
    from repro.planning import FreezePlan

    plan = FreezePlan(num_frozen=1, hotspots=(0,), prune_symmetric=False)
    def run(cache):
        solver = FrozenQubitsSolver(
            plan=plan, config=CONFIG, seed=55, cache=cache, warm_start=False
        )
        return solver.solve(problem, get_backend("montreal"))

    reference = run(False)
    deduped = run(SolveCache())
    assert deduped.num_deduplicated == 1
    assert reference.num_deduplicated == 0
    assert result_signature(deduped) == result_signature(reference)
    # The dedup dependency (params_from) schedules identically on every
    # backend: the adopting job runs a level after its trainer.
    for backend in (
        ProcessPoolBackend(max_workers=2),
        BatchedStatevectorBackend(),
    ):
        solver = FrozenQubitsSolver(
            plan=plan, config=CONFIG, seed=55, cache=SolveCache(),
            warm_start=False,
        )
        result = solver.solve(problem, get_backend("montreal"), backend=backend)
        assert result.num_deduplicated == 1
        assert result_signature(result) == result_signature(reference)


def test_solve_many_batch_cache_bit_identical(problem):
    graph = barabasi_albert_graph(7, attachment=1, seed=41)
    second = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=42)
    problems = [problem, second, problem]  # duplicate instance in-batch
    device = get_backend("montreal")
    kwargs = dict(
        num_frozen=1, device=device, config=CONFIG, seed=99,
        backend=SerialBackend(),
    )
    reference = [result_signature(r) for r in solve_many(problems, **kwargs)]
    cache = SolveCache()
    cached = solve_many(problems, cache=cache, **kwargs)
    assert [result_signature(r) for r in cached] == reference
    # The duplicated problem's template compiled once...
    assert cached[0].cache_stats["transpiled"]["memory_hits"] >= 1
    # ...and its siblings trained once: cross-problem in-batch dedup
    # linked every job of the repeated instance to the first occurrence.
    assert cached[2].num_deduplicated == cached[2].num_circuits_executed
    assert cached[0].num_deduplicated == 0
    warmed = solve_many(problems, cache=cache, **kwargs)
    assert [result_signature(r) for r in warmed] == reference
    assert warmed[0].cache_stats["params"]["memory_hits"] > 0
