"""Tests for the vectorized evaluation engine.

Three layers of agreement, all against the original scalar references:

* the batched p=1 closed form (``QAOA1Structure`` /
  ``qaoa1_expectations_batch``) vs the per-point Python loop of
  ``qaoa1_term_expectations``;
* the fused diagonal statevector kernel (``sim/qaoa_kernel``) vs the
  gate-by-gate ``simulate_statevector`` on the bound template;
* the ``evaluate_batch`` objective (and the optimizer/scan paths built on
  it) vs the legacy scalar ``evaluate_ideal`` / ``evaluate_noisy``.

Agreement bars are 1e-12 absolute — far below anything training could
notice, far above accumulation noise. Random instances are seeded
power-law (Barabási–Albert) graphs with dense/sparse/zero linear terms;
edge cases (h-only, J-only, isolated qubits, deep p) get explicit cases.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.cache.memo import memoized_spectrum
from repro.devices import get_backend
from repro.exceptions import QAOAError, SimulationError
from repro.graphs.generators import barabasi_albert_graph
from repro.ising.hamiltonian import IsingHamiltonian
from repro.planning.pruning import rank_assignments
from repro.qaoa import (
    QAOA1Structure,
    batch_objective,
    build_qaoa_template,
    evaluate_batch,
    evaluate_ideal,
    evaluate_noisy,
    landscape_scan,
    make_context,
    optimize_qaoa,
    qaoa1_expectation,
    qaoa1_expectations_batch,
    qaoa1_term_expectations,
)
from repro.sim.qaoa_kernel import (
    qaoa_expectations_batch,
    qaoa_probabilities,
    qaoa_probabilities_batch,
    qaoa_statevector,
)
from repro.sim.statevector import probabilities, simulate_statevector

TOL = 1e-12


def random_powerlaw_instance(
    seed: int, num_qubits: int = 8, attachment: int = 2
) -> IsingHamiltonian:
    """A seeded BA instance with ±1 couplings and mixed-sparsity h."""
    rng = np.random.default_rng(seed)
    graph = barabasi_albert_graph(num_qubits, attachment, seed=seed)
    base = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=seed + 1)
    linear = rng.normal(size=num_qubits) * (rng.random(num_qubits) < 0.6)
    return IsingHamiltonian(
        num_qubits,
        linear=linear,
        quadratic=base.quadratic,
        offset=float(rng.normal()),
    )


EDGE_CASES = [
    # h-only: no quadratic terms at all.
    IsingHamiltonian(3, linear=[0.7, -1.2, 0.4], offset=1.5),
    # J-only: the paper's benchmark shape (h = 0 everywhere).
    IsingHamiltonian(4, quadratic={(0, 1): 1.0, (1, 2): -1.0, (2, 3): 1.0}),
    # Isolated qubits: qubit 2 carries no term, qubit 3 only a linear one.
    IsingHamiltonian(
        4, linear=[0.0, 0.5, 0.0, -0.8], quadratic={(0, 1): -1.0}, offset=-0.3
    ),
    # Single qubit.
    IsingHamiltonian(1, linear=[0.9]),
]


def _assert_terms_agree(hamiltonian: IsingHamiltonian, gammas, betas):
    structure = QAOA1Structure(hamiltonian)
    z, zz = structure.term_expectations(gammas, betas)
    for row, (gamma, beta) in enumerate(zip(gammas, betas)):
        z_ref, zz_ref = qaoa1_term_expectations(hamiltonian, gamma, beta)
        for col, qubit in enumerate(structure.z_qubits):
            assert abs(z[row, col] - z_ref[int(qubit)]) < TOL
        for col, (i, j) in enumerate(structure.pairs):
            assert abs(zz[row, col] - zz_ref[(int(i), int(j))]) < TOL


class TestBatchedAnalytic:
    def test_batch_matches_scalar_on_random_instances(self):
        rng = np.random.default_rng(7)
        for seed in range(8):
            h = random_powerlaw_instance(seed)
            gammas = rng.uniform(-3, 3, 12)
            betas = rng.uniform(-3, 3, 12)
            batch = qaoa1_expectations_batch(h, gammas, betas)
            scalar = [
                qaoa1_expectation(h, g, b) for g, b in zip(gammas, betas)
            ]
            assert np.max(np.abs(batch - scalar)) < TOL

    def test_per_term_agreement(self):
        rng = np.random.default_rng(11)
        for seed in range(4):
            h = random_powerlaw_instance(seed, num_qubits=7)
            _assert_terms_agree(h, rng.uniform(-2, 2, 5), rng.uniform(-2, 2, 5))

    @pytest.mark.parametrize("hamiltonian", EDGE_CASES)
    def test_edge_cases(self, hamiltonian):
        rng = np.random.default_rng(13)
        gammas = rng.uniform(-3, 3, 9)
        betas = rng.uniform(-3, 3, 9)
        batch = qaoa1_expectations_batch(hamiltonian, gammas, betas)
        scalar = [
            qaoa1_expectation(hamiltonian, g, b)
            for g, b in zip(gammas, betas)
        ]
        assert np.max(np.abs(batch - scalar)) < TOL
        _assert_terms_agree(hamiltonian, gammas, betas)

    def test_chunked_evaluation_matches_unchunked(self, monkeypatch):
        import repro.qaoa.analytic as analytic

        h = random_powerlaw_instance(3)
        gammas = np.linspace(-2, 2, 37)
        betas = np.linspace(-1, 1, 37)
        whole = qaoa1_expectations_batch(h, gammas, betas)
        monkeypatch.setattr(analytic, "BATCH_CHUNK_ELEMENTS", 16)
        chunked = qaoa1_expectations_batch(h, gammas, betas)
        np.testing.assert_array_equal(whole, chunked)

    def test_noise_weights_match_scalar_noisy_path(self):
        h = random_powerlaw_instance(5)
        context = make_context(h, device=get_backend("montreal"))
        legacy = make_context(
            h, device=get_backend("montreal"), vectorized=False
        )
        rng = np.random.default_rng(17)
        gammas = rng.uniform(-2, 2, 6)
        betas = rng.uniform(-2, 2, 6)
        batch = evaluate_batch(context, gammas, betas, noisy=True)
        scalar = [
            evaluate_noisy(legacy, [g], [b]) for g, b in zip(gammas, betas)
        ]
        assert np.max(np.abs(batch - scalar)) < TOL

    def test_empty_hamiltonian_rejected(self):
        with pytest.raises(QAOAError):
            QAOA1Structure(IsingHamiltonian(0))

    def test_shape_mismatch_rejected(self):
        h = EDGE_CASES[1]
        with pytest.raises(QAOAError):
            qaoa1_expectations_batch(h, np.zeros(3), np.zeros(4))


class TestFusedKernel:
    @pytest.mark.parametrize("num_layers", [1, 2, 3])
    def test_statevector_matches_gate_loop(self, num_layers):
        rng = np.random.default_rng(19)
        for seed in range(3):
            h = random_powerlaw_instance(seed, num_qubits=6)
            gammas = rng.uniform(-2, 2, num_layers)
            betas = rng.uniform(-2, 2, num_layers)
            template = build_qaoa_template(h, num_layers=num_layers)
            reference = simulate_statevector(template.bind(gammas, betas))
            fused = qaoa_statevector(h, gammas, betas)
            assert np.max(np.abs(reference - fused)) < TOL

    @pytest.mark.parametrize("hamiltonian", EDGE_CASES)
    def test_edge_case_probabilities(self, hamiltonian):
        gammas, betas = [0.7, -0.4, 1.1], [0.3, 0.9, -0.2]
        template = build_qaoa_template(hamiltonian, num_layers=3)
        reference = probabilities(template.bind(gammas, betas))
        fused = qaoa_probabilities(hamiltonian, gammas, betas)
        assert np.max(np.abs(reference - fused)) < TOL

    def test_batch_rows_match_single_calls(self):
        h = random_powerlaw_instance(23, num_qubits=5)
        rng = np.random.default_rng(29)
        G = rng.uniform(-2, 2, (7, 2))
        B = rng.uniform(-2, 2, (7, 2))
        batch = qaoa_probabilities_batch(h, G, B)
        for row in range(7):
            single = qaoa_probabilities(h, G[row], B[row])
            np.testing.assert_allclose(batch[row], single, atol=TOL, rtol=0)

    def test_expectations_batch_matches_dense_reference(self):
        from repro.sim import expectation_from_probabilities

        h = random_powerlaw_instance(31, num_qubits=5)
        rng = np.random.default_rng(37)
        G = rng.uniform(-2, 2, (5, 3))
        B = rng.uniform(-2, 2, (5, 3))
        values = qaoa_expectations_batch(h, G, B)
        for row in range(5):
            template = build_qaoa_template(h, num_layers=3)
            probs = probabilities(template.bind(G[row], B[row]))
            assert abs(values[row] - expectation_from_probabilities(h, probs)) < TOL

    def test_oversized_instance_rejected(self):
        big = IsingHamiltonian(25, quadratic={(0, 1): 1.0})
        with pytest.raises(SimulationError):
            qaoa_statevector(big, [0.1], [0.2])

    def test_spectrum_length_validated(self):
        h = EDGE_CASES[1]
        with pytest.raises(SimulationError):
            qaoa_statevector(h, [0.1], [0.2], spectrum=np.zeros(3))


class TestEvaluateBatch:
    @pytest.mark.parametrize("num_layers", [1, 2])
    @pytest.mark.parametrize("noisy", [False, True])
    def test_matches_legacy_scalar(self, num_layers, noisy):
        h = random_powerlaw_instance(41, num_qubits=6)
        device = get_backend("montreal")
        context = make_context(h, num_layers=num_layers, device=device)
        legacy = make_context(
            h, num_layers=num_layers, device=device, vectorized=False
        )
        rng = np.random.default_rng(43)
        G = rng.uniform(-2, 2, (5, num_layers))
        B = rng.uniform(-2, 2, (5, num_layers))
        batch = evaluate_batch(context, G, B, noisy=noisy)
        fn = evaluate_noisy if noisy else evaluate_ideal
        scalar = [fn(legacy, G[i], B[i]) for i in range(5)]
        assert np.max(np.abs(batch - scalar)) < TOL
        # The scalar entry points agree with their own batch too.
        point = [float(fn(context, G[i], B[i])) for i in range(5)]
        assert np.max(np.abs(batch - point)) < TOL

    def test_layer_count_validated(self):
        context = make_context(EDGE_CASES[1], num_layers=2)
        with pytest.raises(QAOAError):
            evaluate_batch(context, np.zeros((3, 1)), np.zeros((3, 1)))

    def test_batch_objective_none_for_scalar_context(self):
        context = make_context(EDGE_CASES[1], vectorized=False)
        assert batch_objective(context) is None


class TestOptimizerIntegration:
    def test_batched_and_scalar_seeding_agree(self):
        h = random_powerlaw_instance(47, num_qubits=6)
        context = make_context(h)
        scalar = optimize_qaoa(
            lambda g, b: evaluate_ideal(context, g, b), grid_resolution=8
        )
        batched = optimize_qaoa(
            lambda g, b: evaluate_ideal(context, g, b),
            grid_resolution=8,
            evaluate_batch=batch_objective(context),
        )
        assert batched.gammas == pytest.approx(scalar.gammas, abs=TOL)
        assert batched.betas == pytest.approx(scalar.betas, abs=TOL)
        assert batched.value == pytest.approx(scalar.value, abs=TOL)
        assert batched.num_evaluations == scalar.num_evaluations
        assert batched.history == pytest.approx(scalar.history, abs=TOL)

    def test_seed_vertex_not_double_counted(self):
        h = random_powerlaw_instance(53, num_qubits=5)
        context = make_context(h)
        seen: list[tuple[float, float]] = []

        def evaluate(gammas, betas):
            seen.append((float(gammas[0]), float(betas[0])))
            return evaluate_ideal(context, gammas, betas)

        result = optimize_qaoa(evaluate, grid_resolution=6)
        # Every objective call reached the black box exactly once ...
        assert result.num_evaluations == len(seen)
        # ... and the winning grid point was never re-evaluated by
        # Nelder-Mead at its start vertex.
        winner = (result.history[-1] if result.history else None)
        grid_points = seen[:36]
        values = [evaluate_ideal(context, [g], [b]) for g, b in grid_points]
        best_grid = grid_points[int(np.argmin(values))]
        assert seen.count(best_grid) == 1

    def test_warm_start_acceptance_batched_matches_scalar(self):
        h = random_powerlaw_instance(59, num_qubits=6)
        context = make_context(h)
        trained = optimize_qaoa(
            lambda g, b: evaluate_ideal(context, g, b), grid_resolution=8
        )
        point = (trained.gammas, trained.betas)
        kwargs = dict(grid_resolution=8, initial_point=point)
        scalar = optimize_qaoa(
            lambda g, b: evaluate_ideal(context, g, b), **kwargs
        )
        batched = optimize_qaoa(
            lambda g, b: evaluate_ideal(context, g, b),
            evaluate_batch=batch_objective(context),
            **kwargs,
        )
        assert scalar.warm_started and batched.warm_started
        assert batched.value == pytest.approx(scalar.value, abs=TOL)
        assert batched.num_evaluations == scalar.num_evaluations

    def test_landscape_scan_batched_matches_scalar(self):
        h = random_powerlaw_instance(61, num_qubits=6)
        device = get_backend("montreal")
        context = make_context(h, device=device)
        legacy = make_context(h, device=device, vectorized=False)
        scalar = landscape_scan(
            lambda g, b: evaluate_noisy(legacy, g, b), resolution=9
        )
        batched = landscape_scan(
            None,
            resolution=9,
            evaluate_batch=batch_objective(context, noisy=True),
        )
        assert np.max(np.abs(scalar.values - batched.values)) < TOL
        assert batched.best == pytest.approx(scalar.best, abs=TOL)

    def test_landscape_scan_requires_an_objective(self):
        with pytest.raises(QAOAError):
            landscape_scan(None, resolution=5)


class TestScalarPinnedSampling:
    def test_batched_backend_matches_serial_on_legacy_path(self):
        """vectorized_evaluation=False pins the gate-loop sampling path on
        every backend: the batched backend falls back to the stacked gate
        loop and still matches serial bit-for-bit."""
        from repro.core import FrozenQubitsSolver, SolverConfig

        h = random_powerlaw_instance(83, num_qubits=8, attachment=1)
        device = get_backend("montreal")
        config = SolverConfig(
            shots=256, grid_resolution=4, maxiter=6,
            vectorized_evaluation=False,
        )

        def solve(backend):
            solver = FrozenQubitsSolver(num_frozen=2, config=config, seed=5)
            return solver.solve(h, device, backend=backend)

        serial = solve("serial")
        batched = solve("batched")
        assert serial.best_spins == batched.best_spins
        assert serial.ev_noisy == batched.ev_noisy
        assert sorted(serial.combined_counts.items()) == sorted(
            batched.combined_counts.items()
        )
        # The legacy path really built bound sampling circuits...
        from repro.backend.base import train_job
        from repro.core.solver import FrozenQubitsSolver as Solver

        prepared = Solver(num_frozen=2, config=config, seed=5).prepare_jobs(
            h, device
        )
        trained = train_job(prepared.jobs[0])
        assert trained.sampling_circuit is not None
        # ... while the vectorized path skips them and samples via the
        # fused kernel.
        vec_config = SolverConfig(shots=256, grid_resolution=4, maxiter=6)
        prepared = Solver(num_frozen=2, config=vec_config, seed=5).prepare_jobs(
            h, device
        )
        trained = train_job(prepared.jobs[0])
        assert trained.sampling_circuit is None and trained.needs_sampling


class TestSpectrumMemo:
    def test_energy_landscape_memoized_and_read_only(self):
        h = EDGE_CASES[1]
        first = h.energy_landscape()
        assert h.energy_landscape() is first
        assert not first.flags.writeable
        with pytest.raises(ValueError):
            first[0] = 0.0

    def test_pickle_drops_spectrum_memo(self):
        h = random_powerlaw_instance(67, num_qubits=5)
        h.energy_landscape()
        clone = pickle.loads(pickle.dumps(h))
        assert clone == h
        assert clone._landscape is None
        np.testing.assert_array_equal(
            clone.energy_landscape(), h.energy_landscape()
        )

    def test_memoized_spectrum_shared_across_equal_instances(self):
        a = random_powerlaw_instance(71, num_qubits=5)
        b = random_powerlaw_instance(71, num_qubits=5)
        assert a is not b and a == b
        assert memoized_spectrum(a) is memoized_spectrum(b)


class TestPlannerProbe:
    def _cells(self):
        from repro.core.hotspots import select_hotspots
        from repro.core.partition import (
            executed_subproblems,
            partition_problem,
        )

        h = random_powerlaw_instance(73, num_qubits=8)
        hotspots = select_hotspots(h, 3)
        parts = partition_problem(h, hotspots, prune_symmetric=False)
        return executed_subproblems(parts)

    def test_qaoa1_probe_ranks_all_cells_deterministically(self):
        cells = self._cells()
        first = rank_assignments(cells, seed=5, probe="qaoa1")
        second = rank_assignments(cells, seed=5, probe="qaoa1")
        assert [r.index for r in first] == [r.index for r in second]
        assert sorted(r.index for r in first) == sorted(
            sp.index for sp in cells
        )
        # The anneal probe stays attached for the fallback floor.
        assert all(r.probe_spins for r in first)

    def test_unknown_probe_rejected(self):
        with pytest.raises(ValueError):
            rank_assignments(self._cells(), probe="nope")


class TestSharpnessCurve:
    def test_curve_shape_and_baseline(self):
        from repro.analysis.tradeoff import landscape_sharpness_curve

        h = random_powerlaw_instance(79, num_qubits=8, attachment=1)
        curve = landscape_sharpness_curve(
            h, max_frozen=2, device=get_backend("montreal"), resolution=8
        )
        assert len(curve) == 3
        assert [p.quantum_cost for p in curve] == [1, 2, 4]
        assert curve[0].relative_value == pytest.approx(1.0)
        assert all(np.isfinite(p.relative_value) for p in curve)


@pytest.mark.slow
class TestLargeAgreementSweeps:
    def test_batch_vs_scalar_sweep(self):
        rng = np.random.default_rng(101)
        for seed in range(40):
            h = random_powerlaw_instance(
                seed, num_qubits=int(rng.integers(3, 11)),
                attachment=int(rng.integers(1, 3)),
            )
            gammas = rng.uniform(-4, 4, 20)
            betas = rng.uniform(-4, 4, 20)
            batch = qaoa1_expectations_batch(h, gammas, betas)
            scalar = [
                qaoa1_expectation(h, g, b) for g, b in zip(gammas, betas)
            ]
            assert np.max(np.abs(batch - scalar)) < TOL

    def test_fused_vs_gate_loop_sweep(self):
        rng = np.random.default_rng(103)
        for seed in range(15):
            num_layers = int(rng.integers(1, 4))
            h = random_powerlaw_instance(seed, num_qubits=int(rng.integers(3, 9)))
            G = rng.uniform(-3, 3, (4, num_layers))
            B = rng.uniform(-3, 3, (4, num_layers))
            batch = qaoa_probabilities_batch(h, G, B)
            template = build_qaoa_template(h, num_layers=num_layers)
            for row in range(4):
                reference = probabilities(template.bind(G[row], B[row]))
                assert np.max(np.abs(batch[row] - reference)) < TOL
