"""Tests for repro.baselines: plain QAOA, cutting comparators, classical."""

import numpy as np
import pytest

from repro.baselines import (
    BaselineQAOA,
    cutqc_cost_model,
    edge_cut_solve,
    find_edge_cut,
    solve_classically,
)
from repro.baselines.classical import greedy_descent
from repro.baselines.cutqc import frozenqubits_cost_model
from repro.core import SolverConfig
from repro.devices import get_backend
from repro.exceptions import CutError, SolverError
from repro.graphs.generators import barabasi_albert_graph, ring_graph, star_graph
from repro.ising import IsingHamiltonian, brute_force_minimum

FAST = SolverConfig(shots=1024, grid_resolution=8, maxiter=30)


class TestBaselineQAOA:
    def test_ideal_run_reaches_optimum_region(self, small_ba_hamiltonian):
        result = BaselineQAOA(config=FAST, seed=0).solve(small_ba_hamiltonian)
        exact = brute_force_minimum(small_ba_hamiltonian).value
        assert result.best_value == pytest.approx(exact)
        assert result.cx_count == 0  # no device => no compilation metrics

    def test_device_run_reports_metrics(self, small_ba_hamiltonian):
        result = BaselineQAOA(config=FAST, seed=1).solve(
            small_ba_hamiltonian, device=get_backend("montreal")
        )
        assert result.cx_count > 0
        assert result.depth > 0
        assert result.arg > 0.0
        assert result.ev_noisy != result.ev_ideal

    def test_deterministic_by_seed(self, small_ba_hamiltonian):
        a = BaselineQAOA(config=FAST, seed=5).solve(small_ba_hamiltonian)
        b = BaselineQAOA(config=FAST, seed=5).solve(small_ba_hamiltonian)
        assert a.best_spins == b.best_spins
        assert a.ev_ideal == pytest.approx(b.ev_ideal)


class TestCutCostModels:
    def test_cutqc_exponential_in_cuts(self):
        a = cutqc_cost_model(20, 2)
        b = cutqc_cost_model(20, 4)
        assert b.num_subcircuit_runs == 16 * a.num_subcircuit_runs // 16 * 16 // a.num_subcircuit_runs * a.num_subcircuit_runs  # 4^4
        assert b.num_subcircuit_runs == 256
        assert b.postprocess_ops > a.postprocess_ops

    def test_cutqc_postprocess_exponential_in_qubits(self):
        small = cutqc_cost_model(10, 1)
        large = cutqc_cost_model(20, 1)
        assert large.postprocess_ops / small.postprocess_ops == pytest.approx(2**10)

    def test_frozenqubits_postprocess_linear(self):
        small = frozenqubits_cost_model(10, 1)
        large = frozenqubits_cost_model(20, 1)
        assert large.postprocess_ops / small.postprocess_ops == pytest.approx(2.0)

    def test_table3_contrast(self):
        """Table 3: at equal cut counts CutQC needs more runs and
        exponentially more post-processing."""
        cutqc = cutqc_cost_model(24, 2)
        frozen = frozenqubits_cost_model(24, 2)
        assert frozen.num_subcircuit_runs < cutqc.num_subcircuit_runs
        assert frozen.postprocess_ops < cutqc.postprocess_ops / 1e3

    def test_negative_cuts_rejected(self):
        with pytest.raises(CutError):
            cutqc_cost_model(10, -1)


class TestEdgeCutting:
    def test_ring_cuts_cleanly(self):
        graph = ring_graph(8)
        side_a, side_b, cut = find_edge_cut(graph)
        assert len(side_a) + len(side_b) == 8
        assert len(cut) == 2  # a ring always splits across two edges

    def test_star_cut_fails_boundary(self):
        """The paper's point: hotspot graphs admit no small cut that
        isolates the hub's influence."""
        graph = star_graph(20)
        with pytest.raises(CutError):
            find_edge_cut(graph, max_boundary=3)

    def test_edge_cut_solve_exact_on_ring(self):
        h = IsingHamiltonian.from_graph(ring_graph(10), weights="random_pm1", seed=3)
        result = edge_cut_solve(h)
        assert result.value == pytest.approx(brute_force_minimum(h).value)
        assert h.evaluate(result.spins) == pytest.approx(result.value)

    def test_edge_cut_postprocessing_exponential_in_boundary(self):
        h = IsingHamiltonian.from_graph(ring_graph(10), weights="random_pm1", seed=4)
        result = edge_cut_solve(h)
        assert result.postprocess_evals == 2**result.boundary_size

    def test_too_small_graph_rejected(self):
        h = IsingHamiltonian(3, quadratic={(0, 1): 1.0, (1, 2): 1.0})
        with pytest.raises(CutError):
            edge_cut_solve(h)

    def test_powerlaw_graph_needs_wide_boundary(self):
        """BA hotspot graphs force a larger boundary than a ring of equal
        size — the quantitative Sec.-3.9 contrast."""
        ba = barabasi_albert_graph(12, 2, seed=5)
        ring = ring_graph(12)
        __, __, ring_cut = find_edge_cut(ring, max_boundary=12)
        __, __, ba_cut = find_edge_cut(ba, max_boundary=12)
        ring_boundary = {u for u, v in ring_cut} | {v for u, v in ring_cut}
        ba_boundary = {u for u, v in ba_cut} | {v for u, v in ba_cut}
        assert len(ba_boundary) > len(ring_boundary)


class TestClassical:
    def test_auto_small_is_exact(self, small_ba_hamiltonian):
        result = solve_classically(small_ba_hamiltonian)
        assert result.exact
        assert result.method == "exact"
        assert result.value == pytest.approx(
            brute_force_minimum(small_ba_hamiltonian).value
        )

    def test_auto_large_uses_annealing(self):
        graph = barabasi_albert_graph(25, 1, seed=6)
        h = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=7)
        result = solve_classically(h, seed=8)
        assert result.method == "anneal"
        assert not result.exact
        assert h.evaluate(result.spins) == pytest.approx(result.value)

    def test_greedy_reaches_local_minimum(self, small_ba_hamiltonian):
        result = greedy_descent(small_ba_hamiltonian, seed=9)
        # 1-opt local minimum: no single flip improves.
        spins = np.asarray(result.spins, dtype=float)
        for site in range(len(spins)):
            flipped = spins.copy()
            flipped[site] = -flipped[site]
            assert small_ba_hamiltonian.evaluate_many(flipped[None, :])[0] >= (
                result.value - 1e-9
            )

    def test_exact_size_guard(self):
        h = IsingHamiltonian(27)
        with pytest.raises(SolverError):
            solve_classically(h, method="exact")

    def test_unknown_method(self):
        with pytest.raises(SolverError):
            solve_classically(IsingHamiltonian(2), method="bogus")
