"""Tests for repro.graphs: the graph model, generators, power-law analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphError
from repro.graphs import (
    ProblemGraph,
    airport_network,
    barabasi_albert_graph,
    complete_graph,
    degree_stats,
    erdos_renyi_graph,
    fit_powerlaw_exponent,
    graph_from_dict,
    graph_from_edges,
    graph_to_dict,
    hotspot_ratio,
    hub_and_spoke_graph,
    is_powerlaw_like,
    random_regular_graph,
    ring_graph,
    sk_graph,
    star_graph,
    three_regular_graph,
)


class TestProblemGraph:
    def test_empty_graph(self):
        graph = ProblemGraph(0)
        assert graph.num_nodes == 0
        assert graph.num_edges == 0

    def test_add_edge_and_weight(self):
        graph = ProblemGraph(3)
        graph.add_edge(0, 2, weight=-1.5)
        assert graph.has_edge(2, 0)
        assert graph.weight(0, 2) == -1.5
        assert graph.weight(2, 0) == -1.5

    def test_duplicate_edge_rejected(self):
        graph = ProblemGraph(3, [(0, 1)])
        with pytest.raises(GraphError):
            graph.add_edge(1, 0)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            ProblemGraph(2, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            ProblemGraph(2, [(0, 2)])

    def test_missing_weight_raises(self):
        graph = ProblemGraph(3, [(0, 1)])
        with pytest.raises(GraphError):
            graph.weight(0, 2)

    def test_degrees(self):
        graph = ProblemGraph(4, [(0, 1), (0, 2), (0, 3)])
        assert graph.degree(0) == 3
        assert graph.degrees() == [3, 1, 1, 1]

    def test_weighted_degree_uses_abs(self):
        graph = ProblemGraph(3, [(0, 1, -2.0), (0, 2, 1.0)])
        assert graph.weighted_degree(0) == 3.0

    def test_max_degree_node(self):
        graph = ProblemGraph(4, [(1, 0), (1, 2), (1, 3)])
        assert graph.max_degree_node() == 1

    def test_max_degree_node_empty_graph_raises(self):
        with pytest.raises(GraphError):
            ProblemGraph(0).max_degree_node()

    def test_nodes_by_degree_tie_break(self):
        graph = ProblemGraph(3, [(0, 1), (1, 2), (0, 2)])
        assert graph.nodes_by_degree() == [0, 1, 2]

    def test_remove_node_edges(self):
        graph = ProblemGraph(4, [(0, 1), (0, 2), (2, 3)])
        removed = graph.remove_node_edges(0)
        assert removed == 2
        assert graph.num_edges == 1
        assert graph.degree(0) == 0

    def test_edges_iteration_sorted_pairs(self):
        graph = ProblemGraph(3, [(2, 0, 1.0), (1, 2, 2.0)])
        edges = sorted(graph.edges())
        assert edges == [(0, 2, 1.0), (1, 2, 2.0)]

    def test_is_connected(self):
        assert ProblemGraph(3, [(0, 1), (1, 2)]).is_connected()
        assert not ProblemGraph(3, [(0, 1)]).is_connected()

    def test_copy_independent(self):
        graph = ProblemGraph(3, [(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert graph.num_edges == 1
        assert clone.num_edges == 2

    def test_equality(self):
        assert ProblemGraph(2, [(0, 1)]) == ProblemGraph(2, [(0, 1)])
        assert ProblemGraph(2, [(0, 1)]) != ProblemGraph(2)


class TestGenerators:
    def test_ba_tree_edge_count(self):
        graph = barabasi_albert_graph(30, attachment=1, seed=0)
        # d_BA = 1 yields a tree: N - 1 edges.
        assert graph.num_edges == 29
        assert graph.is_connected()

    def test_ba_dense_edge_count(self):
        graph = barabasi_albert_graph(30, attachment=3, seed=0)
        assert graph.num_edges == 3 + (30 - 4) * 3
        assert graph.is_connected()

    def test_ba_deterministic_by_seed(self):
        a = barabasi_albert_graph(20, 2, seed=5)
        b = barabasi_albert_graph(20, 2, seed=5)
        assert a == b

    def test_ba_rejects_too_few_nodes(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(2, attachment=2)

    def test_ba_rejects_bad_attachment(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(5, attachment=0)

    def test_three_regular_all_degrees_three(self):
        graph = three_regular_graph(12, seed=3)
        assert all(d == 3 for d in graph.degrees())

    def test_regular_rejects_odd_product(self):
        with pytest.raises(GraphError):
            random_regular_graph(5, 3)

    def test_regular_rejects_degree_too_large(self):
        with pytest.raises(GraphError):
            random_regular_graph(4, 4)

    def test_complete_graph(self):
        graph = complete_graph(6)
        assert graph.num_edges == 15
        assert all(d == 5 for d in graph.degrees())

    def test_sk_is_complete(self):
        assert sk_graph(5) == complete_graph(5)

    def test_star_graph_hotspot(self):
        graph = star_graph(7)
        assert graph.degree(0) == 6
        assert graph.max_degree_node() == 0

    def test_ring_graph(self):
        graph = ring_graph(6)
        assert all(d == 2 for d in graph.degrees())
        assert graph.num_edges == 6

    def test_ring_too_small(self):
        with pytest.raises(GraphError):
            ring_graph(2)

    def test_erdos_renyi_bounds(self):
        graph = erdos_renyi_graph(10, 0.0, seed=1)
        assert graph.num_edges == 0
        graph = erdos_renyi_graph(10, 1.0, seed=1)
        assert graph.num_edges == 45

    def test_erdos_renyi_bad_probability(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(5, 1.5)

    def test_hub_and_spoke_structure(self):
        graph = hub_and_spoke_graph(num_hubs=3, spokes_per_hub=4)
        assert graph.num_nodes == 15
        for hub in range(3):
            assert graph.degree(hub) == 2 + 4  # 2 other hubs + 4 spokes

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=40),
        attachment=st.integers(min_value=1, max_value=3),
    )
    def test_ba_always_connected(self, n, attachment):
        if n <= attachment:
            return
        graph = barabasi_albert_graph(n, attachment, seed=0)
        assert graph.is_connected()


class TestPowerlaw:
    def test_degree_stats_star(self):
        stats = degree_stats(star_graph(11))
        assert stats.maximum == 10
        assert stats.minimum == 1
        assert stats.hotspot_ratio > 5.0

    def test_degree_stats_empty_raises(self):
        with pytest.raises(GraphError):
            degree_stats(ProblemGraph(0))

    def test_degree_stats_no_edges_raises(self):
        with pytest.raises(GraphError):
            degree_stats(ProblemGraph(3))

    def test_hotspot_ratio_regular_graph_is_one(self):
        assert hotspot_ratio(ring_graph(8)) == pytest.approx(1.0)

    def test_hotspot_ratio_rejects_bad_k(self):
        with pytest.raises(GraphError):
            hotspot_ratio(ring_graph(8), top_k=0)

    def test_airport_network_matches_paper_shape(self):
        # Paper Fig. 1(b): ten busiest airports have ~10x mean connectivity.
        graph = airport_network(num_airports=300, num_hubs=10, seed=1)
        ratio = hotspot_ratio(graph, top_k=10)
        assert 5.0 <= ratio <= 15.0

    def test_powerlaw_fit_positive_for_ba(self):
        graph = barabasi_albert_graph(300, 1, seed=2)
        assert fit_powerlaw_exponent(graph) > 0.5

    def test_powerlaw_fit_needs_two_degrees(self):
        with pytest.raises(GraphError):
            fit_powerlaw_exponent(ring_graph(8))

    def test_is_powerlaw_like_classification(self):
        assert is_powerlaw_like(barabasi_albert_graph(200, 1, seed=3))
        assert not is_powerlaw_like(ring_graph(50))
        assert not is_powerlaw_like(complete_graph(12))

    def test_is_powerlaw_like_handles_edgeless(self):
        assert not is_powerlaw_like(ProblemGraph(5))


class TestGraphIO:
    def test_dict_roundtrip(self):
        graph = barabasi_albert_graph(12, 2, seed=9)
        assert graph_from_dict(graph_to_dict(graph)) == graph

    def test_from_edges_infers_size(self):
        graph = graph_from_edges([(0, 3), (1, 2)])
        assert graph.num_nodes == 4
        assert graph.num_edges == 2

    def test_from_edges_with_weights(self):
        graph = graph_from_edges([(0, 1, -2.0)])
        assert graph.weight(0, 1) == -2.0

    def test_malformed_dict_raises(self):
        with pytest.raises(GraphError):
            graph_from_dict({"edges": []})
