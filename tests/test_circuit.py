"""Tests for repro.circuit: parameters, gates, the circuit container, DAG."""

import numpy as np
import pytest

from repro.circuit import (
    Instruction,
    Parameter,
    ParameterExpression,
    QuantumCircuit,
    circuit_layers,
    gate_matrix,
    layered_depth,
)
from repro.circuit.gates import num_qubits_of
from repro.exceptions import CircuitError, ParameterError


class TestParameter:
    def test_identity_semantics(self):
        a = Parameter("gamma")
        b = Parameter("gamma")
        assert a != b
        assert a == a

    def test_empty_name_rejected(self):
        with pytest.raises(ParameterError):
            Parameter("")

    def test_scaling_builds_expression(self):
        gamma = Parameter("g")
        expr = 2.0 * gamma
        assert isinstance(expr, ParameterExpression)
        assert expr.coefficient == 2.0
        assert expr.bind({gamma: 3.0}) == 6.0

    def test_shift_and_negation(self):
        gamma = Parameter("g")
        expr = -(gamma * 2.0) + 1.0
        assert expr.bind({gamma: 2.0}) == -3.0

    def test_bind_missing_parameter_raises(self):
        gamma = Parameter("g")
        other = Parameter("h")
        with pytest.raises(ParameterError):
            (2.0 * gamma).bind({other: 1.0})

    def test_with_coefficient(self):
        gamma = Parameter("g")
        expr = (3.0 * gamma).with_coefficient(5.0)
        assert expr.coefficient == 5.0
        assert expr.parameter is gamma


class TestGateMatrices:
    def test_all_fixed_gates_unitary(self):
        for name in ("h", "x", "y", "z", "s", "sdg", "sx", "cx", "cz", "swap"):
            matrix = gate_matrix(name)
            identity = matrix @ matrix.conj().T
            assert np.allclose(identity, np.eye(matrix.shape[0])), name

    def test_rotation_gates_unitary(self):
        for name in ("rz", "rx", "ry", "rzz", "p"):
            matrix = gate_matrix(name, 0.7)
            identity = matrix @ matrix.conj().T
            assert np.allclose(identity, np.eye(matrix.shape[0])), name

    def test_rz_is_diagonal_phase(self):
        matrix = gate_matrix("rz", np.pi)
        assert np.allclose(np.abs(np.diag(matrix)), 1.0)
        assert matrix[0, 1] == 0

    def test_rzz_diagonal_structure(self):
        theta = 0.9
        matrix = gate_matrix("rzz", theta)
        # ZZ eigenvalue +1 states get phase exp(-i theta/2).
        assert matrix[0, 0] == pytest.approx(np.exp(-1j * theta / 2))
        assert matrix[1, 1] == pytest.approx(np.exp(1j * theta / 2))

    def test_sx_squares_to_x(self):
        sx = gate_matrix("sx")
        assert np.allclose(sx @ sx, gate_matrix("x"))

    def test_unknown_gate_raises(self):
        with pytest.raises(CircuitError):
            gate_matrix("bogus")

    def test_missing_angle_raises(self):
        with pytest.raises(CircuitError):
            gate_matrix("rz")

    def test_num_qubits_of(self):
        assert num_qubits_of("h") == 1
        assert num_qubits_of("cx") == 2
        assert num_qubits_of("barrier") == -1


class TestQuantumCircuit:
    def test_builders_and_count_ops(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.rzz(0.5, 1, 2)
        circuit.rx(0.3, 2)
        circuit.measure_all()
        assert circuit.count_ops() == {
            "h": 1, "cx": 1, "rzz": 1, "rx": 1, "measure": 1,
        }
        assert circuit.cx_count == 1
        assert circuit.two_qubit_gate_count == 2

    def test_qubit_out_of_range(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.h(2)

    def test_duplicate_qubits_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.cx(1, 1)

    def test_wrong_arity_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.append(Instruction("cx", (0,)))

    def test_angle_required_for_rotations(self):
        circuit = QuantumCircuit(1)
        with pytest.raises(CircuitError):
            circuit.append(Instruction("rz", (0,)))

    def test_angle_forbidden_for_fixed_gates(self):
        circuit = QuantumCircuit(1)
        with pytest.raises(CircuitError):
            circuit.append(Instruction("h", (0,), 0.5))

    def test_depth_serial_vs_parallel(self):
        serial = QuantumCircuit(1)
        serial.h(0)
        serial.x(0)
        assert serial.depth() == 2
        parallel = QuantumCircuit(2)
        parallel.h(0)
        parallel.h(1)
        assert parallel.depth() == 1

    def test_depth_barrier_synchronises_without_cost(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.barrier()
        circuit.x(1)
        assert circuit.depth() == 2  # x(1) must wait for the barrier front

    def test_depth_measure_toggle(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.measure_all()
        assert circuit.depth(count_measure=True) == 2
        assert circuit.depth(count_measure=False) == 1

    def test_parameters_ordering(self):
        gamma, beta = Parameter("g"), Parameter("b")
        circuit = QuantumCircuit(1)
        circuit.rz(gamma * 2.0, 0)
        circuit.rx(beta * 2.0, 0)
        circuit.rz(gamma * 4.0, 0)
        assert circuit.parameters == (gamma, beta)
        assert circuit.is_parametric

    def test_bind_produces_numeric_copy(self):
        gamma = Parameter("g")
        circuit = QuantumCircuit(1)
        circuit.rz(gamma * 2.0, 0, tag="lin:0")
        bound = circuit.bind({gamma: 0.5})
        assert not bound.is_parametric
        assert bound.instructions[0].angle == 1.0
        assert bound.instructions[0].tag == "lin:0"
        assert circuit.is_parametric  # original untouched

    def test_with_edited_angles_preserves_structure(self):
        gamma = Parameter("g")
        circuit = QuantumCircuit(2)
        circuit.rz(gamma * 2.0, 0, tag="lin:0")
        circuit.cx(0, 1)
        edited = circuit.with_edited_angles({0: (gamma * 6.0)})
        assert edited.instructions[0].angle.coefficient == 6.0
        assert edited.instructions[1].name == "cx"
        assert circuit.instructions[0].angle.coefficient == 2.0

    def test_with_edited_angles_rejects_non_rotation(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        with pytest.raises(CircuitError):
            circuit.with_edited_angles({0: 1.0})

    def test_with_edited_angles_rejects_bad_index(self):
        circuit = QuantumCircuit(1)
        circuit.rz(1.0, 0)
        with pytest.raises(CircuitError):
            circuit.with_edited_angles({5: 1.0})

    def test_remap_qubits(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        remapped = circuit.remap_qubits({0: 3, 1: 1}, num_qubits=4)
        assert remapped.instructions[0].qubits == (3, 1)
        assert remapped.num_qubits == 4

    def test_remap_requires_injective(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        with pytest.raises(CircuitError):
            circuit.remap_qubits({0: 1, 1: 1})

    def test_remap_requires_complete(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        with pytest.raises(CircuitError):
            circuit.remap_qubits({0: 0})

    def test_compose(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        a.compose(b)
        assert len(a) == 2

    def test_compose_width_mismatch(self):
        a = QuantumCircuit(2)
        b = QuantumCircuit(3)
        with pytest.raises(CircuitError):
            a.compose(b)

    def test_copy_is_independent(self):
        a = QuantumCircuit(1)
        a.h(0)
        b = a.copy()
        b.x(0)
        assert len(a) == 1
        assert len(b) == 2


class TestDag:
    def test_layers_partition_all_gates(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.h(1)
        circuit.cx(0, 1)
        circuit.h(2)
        layers = circuit_layers(circuit)
        total = sum(len(layer) for layer in layers)
        assert total == 4
        assert len(layers[0]) == 3  # h(0), h(1), h(2) all start together

    def test_layered_depth_matches_circuit_depth(self):
        circuit = QuantumCircuit(4)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(2, 3)
        circuit.measure_all()
        assert layered_depth(circuit) == circuit.depth()

    def test_barrier_not_a_layer(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.barrier()
        circuit.h(1)
        layers = circuit_layers(circuit)
        assert all(op.name != "barrier" for layer in layers for op in layer)
