"""Tests for repro.core: hotspots, partitioning, costs, and the solver.

The integration tests here check the paper's *claims*, not just plumbing:
sub-circuits are smaller and higher-fidelity, symmetry pruning halves the
quantum cost without losing the optimum, decoded outcomes live in the right
sub-space, and FQ's ARG beats the baseline's.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    FrozenQubitsSolver,
    SolverConfig,
    partition_problem,
    quantum_cost,
    recommend_num_frozen,
    select_hotspots,
)
from repro.core.costs import cost_curve
from repro.core.hotspots import dropped_edges
from repro.core.partition import executed_subproblems, linear_support_union
from repro.core.solver import run_qaoa_instance
from repro.devices import get_backend
from repro.exceptions import SolverError
from repro.graphs.generators import barabasi_albert_graph, star_graph
from repro.ising import IsingHamiltonian, brute_force_minimum
from repro.qaoa import approximation_ratio_gap
from repro.utils.bitstrings import bits_to_spins, int_to_bits

FAST = SolverConfig(shots=1024, grid_resolution=8, maxiter=30)


class TestHotspots:
    def test_degree_policy_picks_star_center(self):
        h = IsingHamiltonian.from_graph(star_graph(8))
        assert select_hotspots(h, 1) == [0]

    def test_sequential_selection_discounts_chosen(self):
        # Two hubs sharing all leaves: after picking one, the other's
        # residual degree should still make it the second pick.
        quadratic = {}
        for leaf in range(2, 8):
            quadratic[(0, leaf)] = 1.0
            quadratic[(1, leaf)] = 1.0
        quadratic[(0, 1)] = 1.0
        h = IsingHamiltonian(8, quadratic=quadratic)
        assert select_hotspots(h, 2) == [0, 1]

    def test_weighted_policy(self):
        h = IsingHamiltonian(
            3, quadratic={(0, 1): 0.1, (0, 2): 0.1, (1, 2): 5.0}
        )
        # Degree ties everywhere; node 1 and 2 carry the heavy edge.
        assert select_hotspots(h, 1, policy="weighted")[0] in (1, 2)

    def test_random_policy_deterministic_by_seed(self):
        h = IsingHamiltonian.from_graph(barabasi_albert_graph(12, 1, seed=1))
        a = select_hotspots(h, 3, policy="random", seed=7)
        b = select_hotspots(h, 3, policy="random", seed=7)
        assert a == b
        assert len(set(a)) == 3

    def test_swap_aware_requires_device(self):
        h = IsingHamiltonian.from_graph(star_graph(4))
        with pytest.raises(SolverError):
            select_hotspots(h, 1, policy="swap_aware")

    def test_swap_aware_runs_with_device(self):
        h = IsingHamiltonian.from_graph(barabasi_albert_graph(10, 1, seed=2))
        selected = select_hotspots(
            h, 2, policy="swap_aware", device=get_backend("montreal")
        )
        assert len(selected) == 2

    def test_unknown_policy(self):
        h = IsingHamiltonian.from_graph(star_graph(4))
        with pytest.raises(SolverError):
            select_hotspots(h, 1, policy="bogus")

    def test_bad_m_rejected(self):
        h = IsingHamiltonian.from_graph(star_graph(4))
        with pytest.raises(SolverError):
            select_hotspots(h, 5)

    def test_dropped_edges_counts_incident_terms(self):
        h = IsingHamiltonian.from_graph(star_graph(6))
        assert dropped_edges(h, [0]) == 5
        assert dropped_edges(h, [1]) == 1

    def test_hotspot_maximises_dropped_edges(self):
        """Sec. 3.5's rationale: the degree policy drops at least as many
        edges as any single alternative node."""
        graph = barabasi_albert_graph(14, 2, seed=3)
        h = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=4)
        chosen = select_hotspots(h, 1)[0]
        best = max(dropped_edges(h, [q]) for q in range(h.num_qubits))
        assert dropped_edges(h, [chosen]) == best


class TestPartition:
    def test_partition_counts_and_pruning(self, small_ba_hamiltonian):
        parts = partition_problem(small_ba_hamiltonian, [0, 1])
        assert len(parts) == 4
        executed = executed_subproblems(parts)
        assert len(executed) == 2  # symmetric parent => half pruned
        mirrors = [sp for sp in parts if sp.is_mirror]
        assert all(parts[sp.mirror_of].assignment == tuple(-v for v in sp.assignment)
                   for sp in mirrors)

    def test_pruning_disabled(self, small_ba_hamiltonian):
        parts = partition_problem(
            small_ba_hamiltonian, [0, 1], prune_symmetric=False
        )
        assert len(executed_subproblems(parts)) == 4

    def test_asymmetric_parent_not_pruned(self):
        h = IsingHamiltonian(3, linear=[1.0, 0, 0], quadratic={(0, 1): 1.0})
        parts = partition_problem(h, [0])
        assert len(executed_subproblems(parts)) == 2

    def test_cannot_freeze_everything(self):
        h = IsingHamiltonian(2, quadratic={(0, 1): 1.0})
        with pytest.raises(SolverError):
            partition_problem(h, [0, 1])

    def test_subproblem_sizes(self, small_ba_hamiltonian):
        parts = partition_problem(small_ba_hamiltonian, [2])
        assert all(
            sp.hamiltonian.num_qubits == small_ba_hamiltonian.num_qubits - 1
            for sp in parts
        )

    def test_linear_support_union_covers_neighbors(self, small_ba_hamiltonian):
        hotspot = select_hotspots(small_ba_hamiltonian, 1)[0]
        parts = partition_problem(small_ba_hamiltonian, [hotspot])
        support = linear_support_union(parts)
        neighbors = small_ba_hamiltonian.neighbors(hotspot)
        expected = sorted(
            parts[0].spec.sub_index(q) for q in neighbors
        )
        assert support == expected

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_partition_preserves_global_minimum(self, data):
        """Min over sub-problem minima equals the parent minimum — the
        exactness guarantee of Sec. 3.6, including with pruning + mirrors."""
        n = data.draw(st.integers(min_value=3, max_value=7))
        seed = data.draw(st.integers(min_value=0, max_value=10_000))
        graph = barabasi_albert_graph(n, 1, seed=seed)
        h = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=seed + 1)
        m = data.draw(st.integers(min_value=1, max_value=min(2, n - 1)))
        hotspots = select_hotspots(h, m)
        parts = partition_problem(h, hotspots)
        best = np.inf
        for sp in parts:
            if sp.is_mirror:
                continue
            best = min(best, brute_force_minimum(sp.hamiltonian).value)
        assert best == pytest.approx(brute_force_minimum(h).value)


class TestCosts:
    def test_quantum_cost_table(self):
        assert quantum_cost(0) == 1
        assert quantum_cost(1) == 1          # pruned: mirror is free
        assert quantum_cost(2) == 2
        assert quantum_cost(10) == 512
        assert quantum_cost(2, pruned=False) == 4

    def test_quantum_cost_negative(self):
        with pytest.raises(SolverError):
            quantum_cost(-1)

    def test_cost_curve_monotone_cx(self, small_ba_hamiltonian):
        curve = cost_curve(
            small_ba_hamiltonian, get_backend("montreal"), max_frozen=3
        )
        cx = [report.cx_count for report in curve]
        assert all(a >= b for a, b in zip(cx, cx[1:]))
        assert curve[0].num_circuits == 1
        assert curve[3].num_circuits == 4

    def test_recommend_num_frozen_respects_budget(self):
        graph = barabasi_albert_graph(12, 1, seed=6)
        h = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=7)
        m = recommend_num_frozen(
            h, get_backend("montreal"), budget_circuits=1, max_frozen=4
        )
        assert m <= 1  # budget of one circuit allows at most m=1 (pruned)

    def test_recommend_num_frozen_on_star(self):
        """On a star, freezing the hub removes every edge — the advisor
        must recommend at least m=1."""
        h = IsingHamiltonian.from_graph(star_graph(10))
        m = recommend_num_frozen(h, get_backend("montreal"), budget_circuits=8)
        assert m >= 1


class TestSolver:
    def test_fq_beats_baseline_arg(self, small_ba_hamiltonian):
        """The paper's headline claim at small scale."""
        device = get_backend("montreal")
        baseline = run_qaoa_instance(
            small_ba_hamiltonian, device=device, config=FAST, seed=0
        )
        baseline_arg = approximation_ratio_gap(
            baseline.ev_ideal, baseline.ev_noisy
        )
        solver = FrozenQubitsSolver(num_frozen=1, config=FAST, seed=0)
        result = solver.solve(small_ba_hamiltonian, device=device)
        fq_arg = approximation_ratio_gap(result.ev_ideal, result.ev_noisy)
        assert fq_arg < baseline_arg

    def test_quantum_cost_matches_pruning(self, small_ba_hamiltonian):
        result1 = FrozenQubitsSolver(num_frozen=1, config=FAST, seed=1).solve(
            small_ba_hamiltonian
        )
        assert result1.num_circuits_executed == 1
        result2 = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=1).solve(
            small_ba_hamiltonian
        )
        assert result2.num_circuits_executed == 2
        assert result2.edited_circuits == 0  # no device => no template

    def test_template_editing_used_with_device(self, small_ba_hamiltonian):
        device = get_backend("montreal")
        result = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=2).solve(
            small_ba_hamiltonian, device=device
        )
        assert result.template is not None
        assert result.edited_circuits == 1  # second sibling edited, not compiled

    def test_finds_global_optimum_ideal(self, small_ba_hamiltonian):
        result = FrozenQubitsSolver(num_frozen=1, config=FAST, seed=3).solve(
            small_ba_hamiltonian
        )
        exact = brute_force_minimum(small_ba_hamiltonian).value
        assert result.best_value == pytest.approx(exact)

    def test_decoded_outcomes_respect_frozen_bits(self, small_ba_hamiltonian):
        """Every decoded outcome of a sub-problem has the frozen qubits at
        exactly the substituted values (mirrors: the flipped values)."""
        solver = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=4)
        result = solver.solve(small_ba_hamiltonian, device=get_backend("montreal"))
        n = small_ba_hamiltonian.num_qubits
        for outcome in result.outcomes:
            sp = outcome.subproblem
            assert outcome.decoded_counts is not None
            for key in outcome.decoded_counts:
                spins = bits_to_spins(int_to_bits(key, n))
                for qubit, value in zip(sp.spec.frozen_qubits, sp.assignment):
                    assert spins[qubit] == value

    def test_mirror_ev_equals_twin(self, small_ba_hamiltonian):
        result = FrozenQubitsSolver(num_frozen=1, config=FAST, seed=5).solve(
            small_ba_hamiltonian
        )
        assert len(result.outcomes) == 2
        executed, mirror = result.outcomes
        if executed.subproblem.is_mirror:
            executed, mirror = mirror, executed
        assert mirror.ev_ideal == executed.ev_ideal
        assert mirror.best_value == pytest.approx(executed.best_value)

    def test_combined_counts_cover_both_subspaces(self, small_ba_hamiltonian):
        result = FrozenQubitsSolver(num_frozen=1, config=FAST, seed=6).solve(
            small_ba_hamiltonian, device=get_backend("montreal")
        )
        combined = result.combined_counts
        hotspot = result.frozen_qubits[0]
        n = small_ba_hamiltonian.num_qubits
        values = set()
        for key in combined:
            spins = bits_to_spins(int_to_bits(key, n))
            values.add(spins[hotspot])
        assert values == {-1, 1}

    def test_m_zero_is_plain_qaoa(self, small_ba_hamiltonian):
        result = FrozenQubitsSolver(num_frozen=0, config=FAST, seed=7).solve(
            small_ba_hamiltonian
        )
        assert result.num_circuits_executed == 1
        assert result.frozen_qubits == []
        assert len(result.outcomes) == 1

    def test_sub_circuit_fidelity_exceeds_baseline(self, small_ba_hamiltonian):
        device = get_backend("montreal")
        baseline = run_qaoa_instance(
            small_ba_hamiltonian, device=device, config=FAST, seed=8
        )
        result = FrozenQubitsSolver(num_frozen=1, config=FAST, seed=8).solve(
            small_ba_hamiltonian, device=device
        )
        executed = [o for o in result.outcomes if o.run is not None]
        assert executed[0].run.context.fidelity > baseline.context.fidelity

    def test_negative_m_rejected(self):
        with pytest.raises(SolverError):
            FrozenQubitsSolver(num_frozen=-1)

    def test_large_problem_falls_back_to_annealing(self):
        """Instances over the sampling cap still produce a solution."""
        graph = barabasi_albert_graph(30, 1, seed=9)
        h = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=10)
        config = SolverConfig(
            shots=256, grid_resolution=6, maxiter=20, max_sampled_qubits=10
        )
        result = FrozenQubitsSolver(num_frozen=1, config=config, seed=11).solve(h)
        assert result.outcomes[0].decoded_counts is None
        assert len(result.best_spins) == 30
        assert h.evaluate(result.best_spins) == pytest.approx(result.best_value)

    def test_asymmetric_problem_runs_all_subproblems(self):
        h = IsingHamiltonian(
            5,
            linear=[0.5, 0, 0, 0, 0],
            quadratic={(0, 1): 1.0, (0, 2): -1.0, (0, 3): 1.0, (3, 4): 1.0},
        )
        result = FrozenQubitsSolver(num_frozen=1, config=FAST, seed=12).solve(h)
        assert result.num_circuits_executed == 2
