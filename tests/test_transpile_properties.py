"""Property-based tests of transpiler semantic preservation.

The strongest correctness evidence for the compilation stack: for random
circuits routed onto random connected devices, the measurement
distribution — read back through the final layout — must exactly match the
unconstrained logical execution. This subsumes unit checks of layout
bookkeeping, SWAP insertion, decomposition and cleanup passes in one
invariant.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import QuantumCircuit
from repro.devices import Device, uniform_calibration
from repro.devices.topologies import grid_coupling, linear_coupling, ring_coupling
from repro.sim.statevector import probabilities
from repro.transpile import TranspileOptions, transpile


@st.composite
def random_logical_circuit(draw):
    """A random 3-5 qubit circuit over the QAOA-relevant gate set."""
    n = draw(st.integers(min_value=3, max_value=5))
    circuit = QuantumCircuit(n)
    num_ops = draw(st.integers(min_value=1, max_value=12))
    for __ in range(num_ops):
        kind = draw(st.sampled_from(("h", "rz", "rx", "cx", "rzz")))
        q = draw(st.integers(min_value=0, max_value=n - 1))
        if kind == "h":
            circuit.h(q)
        elif kind == "rz":
            circuit.rz(draw(st.floats(-3, 3, allow_nan=False)), q)
        elif kind == "rx":
            circuit.rx(draw(st.floats(-3, 3, allow_nan=False)), q)
        else:
            p = draw(
                st.integers(min_value=0, max_value=n - 1).filter(lambda x: x != q)
            )
            if kind == "cx":
                circuit.cx(q, p)
            else:
                circuit.rzz(draw(st.floats(-3, 3, allow_nan=False)), q, p)
    return circuit


@st.composite
def random_device(draw):
    """A random small connected device: line, ring, or grid."""
    shape = draw(st.sampled_from(("line", "ring", "grid")))
    if shape == "line":
        coupling = linear_coupling(draw(st.integers(min_value=5, max_value=7)))
    elif shape == "ring":
        coupling = ring_coupling(draw(st.integers(min_value=5, max_value=7)))
    else:
        coupling = grid_coupling(2, draw(st.integers(min_value=3, max_value=4)))
    return Device("random", coupling, uniform_calibration(coupling))


def logical_distribution_through_layout(compiled, num_logical: int) -> np.ndarray:
    """Physical outcome distribution folded back to logical qubits."""
    physical = probabilities(compiled.circuit)
    wires = compiled.measured_physical_qubits()
    logical = np.zeros(1 << num_logical)
    for outcome, probability in enumerate(physical):
        if probability == 0.0:
            continue
        key = 0
        for q, wire in enumerate(wires):
            key |= ((outcome >> wire) & 1) << q
        logical[key] += probability
    return logical


@settings(max_examples=30, deadline=None)
@given(
    circuit=random_logical_circuit(),
    device=random_device(),
    layout_method=st.sampled_from(("trivial", "degree", "noise")),
    lookahead=st.booleans(),
    optimize=st.booleans(),
)
def test_routing_preserves_distribution(
    circuit, device, layout_method, lookahead, optimize
):
    """Transpiled execution == logical execution, for every option combo."""
    options = TranspileOptions(
        layout_method=layout_method, lookahead=lookahead, optimize=optimize
    )
    compiled = transpile(circuit, device, options)
    expected = probabilities(circuit)
    actual = logical_distribution_through_layout(compiled, circuit.num_qubits)
    assert np.allclose(actual, expected, atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(circuit=random_logical_circuit(), device=random_device())
def test_hardware_basis_preserves_distribution(circuit, device):
    """Full lowering to {rz, sx, x, cx} keeps the distribution too."""
    compiled = transpile(circuit, device, TranspileOptions(basis="hardware"))
    names = set(compiled.circuit.count_ops())
    assert names <= {"rz", "sx", "x", "cx", "measure", "barrier"}
    expected = probabilities(circuit)
    actual = logical_distribution_through_layout(compiled, circuit.num_qubits)
    assert np.allclose(actual, expected, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(circuit=random_logical_circuit(), device=random_device())
def test_all_two_qubit_gates_respect_coupling(circuit, device):
    """Every 2q gate in the compiled circuit acts on physically coupled wires."""
    compiled = transpile(circuit, device)
    for op in compiled.circuit:
        if op.is_two_qubit:
            assert device.coupling.are_adjacent(*op.qubits)
