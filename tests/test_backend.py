"""Tests for repro.backend: the execution-backend contract.

The load-bearing guarantees: per-job child seeds make results
backend-independent (serial == process pool, bit for bit), the batched
statevector path is numerically faithful, the batch API composes out of
single solves, and the template-editing fan-out gives every job its own
coefficients (no aliasing through the shared master).
"""

import numpy as np
import pytest

from repro.backend import (
    BACKEND_REGISTRY,
    BatchedStatevectorBackend,
    ExecutionBackend,
    JobSpec,
    ProcessPoolBackend,
    SerialBackend,
    execute_job,
    get_default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.core import FrozenQubitsSolver, SolverConfig, solve_many
from repro.devices import get_backend
from repro.exceptions import SolverError
from repro.graphs.generators import barabasi_albert_graph
from repro.ising import IsingHamiltonian
from repro.qaoa.circuits import linear_tag

FAST = SolverConfig(shots=512, grid_resolution=6, maxiter=20)


def _problem(num_qubits=8, seed=42):
    graph = barabasi_albert_graph(num_qubits, attachment=1, seed=seed)
    return IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=seed + 1)


def _assert_results_identical(a, b):
    assert a.best_spins == b.best_spins
    assert a.best_value == b.best_value
    assert a.ev_ideal == b.ev_ideal
    assert a.ev_noisy == b.ev_noisy
    assert a.frozen_qubits == b.frozen_qubits
    assert a.num_circuits_executed == b.num_circuits_executed
    for oa, ob in zip(a.outcomes, b.outcomes):
        assert oa.best_spins == ob.best_spins
        assert oa.best_value == ob.best_value
        if oa.decoded_counts is None:
            assert ob.decoded_counts is None
        else:
            assert dict(oa.decoded_counts) == dict(ob.decoded_counts)


class TestRegistry:
    def test_resolve_names(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("process"), ProcessPoolBackend)
        assert isinstance(resolve_backend("batched"), BatchedStatevectorBackend)
        assert set(BACKEND_REGISTRY) == {"serial", "process", "batched"}

    def test_resolve_instance_passthrough(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_resolve_unknown_name(self):
        with pytest.raises(SolverError):
            resolve_backend("gpu")

    def test_resolve_bad_type(self):
        with pytest.raises(SolverError):
            resolve_backend(42)

    def test_default_backend_roundtrip(self):
        assert isinstance(get_default_backend(), SerialBackend)
        try:
            set_default_backend("batched")
            assert isinstance(get_default_backend(), BatchedStatevectorBackend)
            assert isinstance(resolve_backend(None), BatchedStatevectorBackend)
        finally:
            set_default_backend(None)
        assert isinstance(get_default_backend(), SerialBackend)

    def test_pool_validates_args(self):
        with pytest.raises(SolverError):
            ProcessPoolBackend(max_workers=0)
        with pytest.raises(SolverError):
            BatchedStatevectorBackend(max_batch_size=0)


class TestBackendEquivalence:
    """Same seed => same FrozenQubitsResult, whatever ran the jobs."""

    def test_serial_matches_process_pool_ideal(self):
        h = _problem()
        serial = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=7).solve(h)
        pooled = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=7).solve(
            h, backend=ProcessPoolBackend(max_workers=2)
        )
        _assert_results_identical(serial, pooled)

    def test_serial_matches_process_pool_noisy(self):
        h = _problem()
        device = get_backend("montreal")
        serial = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=9).solve(
            h, device=device
        )
        pooled = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=9).solve(
            h, device=device, backend=ProcessPoolBackend(max_workers=2)
        )
        _assert_results_identical(serial, pooled)

    def test_serial_matches_batched(self):
        h = _problem()
        device = get_backend("montreal")
        serial = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=11).solve(
            h, device=device
        )
        batched = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=11).solve(
            h, device=device, backend=BatchedStatevectorBackend()
        )
        # Expectations are angle-analytic: exact. Sampled outcomes go
        # through the stacked simulator: numerically equal distributions.
        assert batched.ev_ideal == serial.ev_ideal
        assert batched.ev_noisy == serial.ev_noisy
        assert batched.best_value == pytest.approx(serial.best_value)
        assert batched.combined_counts.total_shots == serial.combined_counts.total_shots

    def test_batched_chunks_groups(self):
        h = _problem(9)
        result = FrozenQubitsSolver(
            num_frozen=3, prune_symmetric=False, config=FAST, seed=13
        ).solve(h, backend=BatchedStatevectorBackend(max_batch_size=3))
        assert result.num_circuits_executed == 8
        assert len(result.outcomes) == 8

    def test_string_backend_accepted_by_solve(self):
        h = _problem()
        result = FrozenQubitsSolver(num_frozen=1, config=FAST, seed=15).solve(
            h, backend="batched"
        )
        assert len(result.best_spins) == h.num_qubits


class TestJobs:
    def test_execute_job_pretrained_skips_optimization(self):
        h = _problem()
        spec = JobSpec(
            job_id="j0",
            hamiltonian=h,
            config=FAST,
            seed=3,
            params=((0.4,), (0.3,)),
        )
        result = execute_job(spec)
        assert result.job_id == "j0"
        assert result.run.optimization.gammas == (0.4,)
        assert result.run.optimization.betas == (0.3,)
        assert result.run.optimization.num_evaluations == 1
        assert result.elapsed_seconds >= 0.0

    def test_backends_preserve_job_order(self):
        specs = [
            JobSpec(job_id=f"j{i}", hamiltonian=_problem(5, seed=i), config=FAST, seed=i)
            for i in range(4)
        ]
        for backend in (
            SerialBackend(),
            ProcessPoolBackend(max_workers=2),
            BatchedStatevectorBackend(),
        ):
            results = backend.run(specs)
            assert [r.job_id for r in results] == [s.job_id for s in specs]

    def test_empty_submission(self):
        assert ProcessPoolBackend().run([]) == []
        assert SerialBackend().run([]) == []
        assert BatchedStatevectorBackend().run([]) == []

    def test_finalize_rejects_result_mismatch(self):
        h = _problem()
        solver = FrozenQubitsSolver(num_frozen=1, config=FAST, seed=5)
        prepared = solver.prepare_jobs(h)
        results = SerialBackend().run(prepared.jobs)
        with pytest.raises(SolverError):
            solver.finalize(prepared, results[:-1] if len(results) > 1 else [])


class TestSolveMany:
    def test_matches_individual_solves(self):
        problems = [_problem(6, seed=s) for s in (1, 2, 3)]
        batch = solve_many(problems, num_frozen=1, config=FAST, seed=21)
        from repro.utils.rng import spawn_seeds

        child_seeds = spawn_seeds(21, len(problems))
        for problem, child_seed, result in zip(problems, child_seeds, batch):
            alone = FrozenQubitsSolver(
                num_frozen=1, config=FAST, seed=child_seed
            ).solve(problem)
            _assert_results_identical(alone, result)

    def test_backend_independent(self):
        problems = [_problem(6, seed=s) for s in (4, 5)]
        serial = solve_many(problems, num_frozen=2, config=FAST, seed=23)
        pooled = solve_many(
            problems,
            num_frozen=2,
            config=FAST,
            seed=23,
            backend=ProcessPoolBackend(max_workers=2),
        )
        for a, b in zip(serial, pooled):
            _assert_results_identical(a, b)

    def test_accepts_wrapper_objects(self):
        class Wrapper:
            def __init__(self, hamiltonian):
                self.hamiltonian = hamiltonian

        results = solve_many(
            [Wrapper(_problem(5, seed=8))], num_frozen=1, config=FAST, seed=1
        )
        assert len(results) == 1

    def test_rejects_bad_problem(self):
        with pytest.raises(SolverError):
            solve_many(["nope"], num_frozen=1, seed=1)

    def test_rejects_misaligned_seeds(self):
        with pytest.raises(SolverError):
            solve_many([_problem(5)], num_frozen=1, seeds=[1, 2])


class TestTemplateAliasing:
    """Regression for the Sec. 3.7.1 editing hazard: every executed job
    must hold a template carrying its *own* linear coefficients."""

    def test_each_job_owns_its_coefficients(self):
        h = _problem(9, seed=70)
        device = get_backend("montreal")
        solver = FrozenQubitsSolver(
            num_frozen=2, prune_symmetric=False, config=FAST, seed=31
        )
        prepared = solver.prepare_jobs(h, device)
        assert len(prepared.jobs) == 4
        assert prepared.edited_circuits == 3
        support = sorted(
            {
                q
                for sp in prepared.executed
                for q, coeff in enumerate(sp.hamiltonian.linear)
                if coeff != 0.0
            }
        )
        assert support, "hotspot removal must induce linear terms"
        for sp, job in zip(prepared.executed, prepared.jobs):
            surface = job.transpiled.parametric_instruction_indices()
            for q in support:
                expected = 2.0 * sp.hamiltonian.linear_coefficient(q)
                for index in surface[linear_tag(q)]:
                    angle = job.transpiled.circuit.instructions[index].angle
                    assert angle.coefficient == expected

    def test_master_template_not_mutated(self):
        h = _problem(9, seed=70)
        device = get_backend("montreal")
        solver = FrozenQubitsSolver(
            num_frozen=2, prune_symmetric=False, config=FAST, seed=31
        )
        prepared = solver.prepare_jobs(h, device)
        master = prepared.template
        first = prepared.executed[0]
        surface = master.parametric_instruction_indices()
        for q, coeff in enumerate(first.hamiltonian.linear):
            tag = linear_tag(q)
            if tag not in surface:
                continue
            for index in surface[tag]:
                angle = master.circuit.instructions[index].angle
                assert angle.coefficient == 2.0 * coeff

    def test_sibling_contexts_differ_after_solve(self):
        h = _problem(9, seed=70)
        device = get_backend("montreal")
        result = FrozenQubitsSolver(
            num_frozen=2, prune_symmetric=False, config=FAST, seed=33
        ).solve(h, device=device)
        executed = [o for o in result.outcomes if o.run is not None]
        transpiled = [o.run.context.transpiled for o in executed]
        # Each context wraps its own object, not a shared alias.
        assert len({id(t) for t in transpiled}) == len(transpiled)


class TestAbstractContract:
    def test_cannot_instantiate_interface(self):
        with pytest.raises(TypeError):
            ExecutionBackend()

    def test_repr(self):
        assert "ProcessPoolBackend" in repr(ProcessPoolBackend(max_workers=3))
        assert "BatchedStatevectorBackend" in repr(BatchedStatevectorBackend())
