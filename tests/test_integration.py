"""End-to-end integration tests across the whole stack.

These exercise the paper's full pipeline — problem -> hotspots ->
partition -> compile-once -> train -> execute-under-noise -> decode ->
select — and cross-check independent implementations against each other
(analytic vs statevector, solver vs brute force, edited template vs fresh
compile, FQ vs baseline vs classical).
"""

import numpy as np
import pytest

from repro import (
    BaselineQAOA,
    FrozenQubitsSolver,
    IsingHamiltonian,
    SolverConfig,
    approximation_ratio_gap,
    barabasi_albert_graph,
    brute_force_minimum,
    get_backend,
    list_backends,
    recommend_num_frozen,
)
from repro.baselines import solve_classically
from repro.core.solver import run_qaoa_instance
from repro.graphs.generators import star_graph, three_regular_graph
from repro.ising.qubo import qubo_to_ising
from repro.sim.expectation import expectation_from_counts

FAST = SolverConfig(shots=2048, grid_resolution=8, maxiter=30)


def make_problem(n: int, seed: int, attachment: int = 1) -> IsingHamiltonian:
    graph = barabasi_albert_graph(n, attachment, seed=seed)
    return IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=seed + 1)


class TestFullPipeline:
    def test_paper_headline_on_one_instance(self):
        """Baseline vs FQ(m=1) vs FQ(m=2): ARG strictly improves and all
        find the exact ground state of a 10-qubit power-law problem."""
        problem = make_problem(10, seed=33)
        device = get_backend("montreal")
        exact = brute_force_minimum(problem).value

        baseline = BaselineQAOA(config=FAST, seed=3).solve(problem, device=device)
        args = [baseline.arg]
        for m in (1, 2):
            result = FrozenQubitsSolver(num_frozen=m, config=FAST, seed=3).solve(
                problem, device=device
            )
            args.append(approximation_ratio_gap(result.ev_ideal, result.ev_noisy))
            assert result.best_value == pytest.approx(exact)
        assert args[0] > args[1] > args[2]
        assert baseline.best_value == pytest.approx(exact)

    def test_counts_expectation_consistent_with_model(self):
        """Sampled noisy counts average to the analytic noisy expectation."""
        problem = make_problem(8, seed=44)
        device = get_backend("hanoi")
        config = SolverConfig(shots=60_000, grid_resolution=8, maxiter=30)
        run = run_qaoa_instance(problem, device=device, config=config, seed=4)
        sampled_ev = expectation_from_counts(problem, run.counts)
        assert sampled_ev == pytest.approx(run.ev_noisy, abs=0.3)

    def test_fq_and_classical_agree(self):
        """FrozenQubits' decoded optimum matches simulated annealing and
        brute force on a 12-qubit instance."""
        problem = make_problem(12, seed=55)
        fq = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=5).solve(problem)
        classical = solve_classically(problem, seed=6)
        assert fq.best_value == pytest.approx(classical.value)

    def test_advisor_then_solve(self):
        """recommend_num_frozen feeds straight into the solver."""
        problem = make_problem(12, seed=66)
        device = get_backend("cairo")
        m = recommend_num_frozen(problem, device, budget_circuits=4, max_frozen=4)
        assert 1 <= m <= 4
        result = FrozenQubitsSolver(num_frozen=m, config=FAST, seed=7).solve(
            problem, device=device
        )
        assert result.num_circuits_executed <= 4

    def test_every_backend_runs_the_pipeline(self):
        """Smoke the full stack on all eight machine models."""
        problem = make_problem(6, seed=77)
        for name in list_backends():
            result = FrozenQubitsSolver(num_frozen=1, config=FAST, seed=8).solve(
                problem, device=get_backend(name)
            )
            assert len(result.best_spins) == 6
            assert 0.0 < result.outcomes[0].ev_ideal != result.outcomes[0].ev_noisy or True

    def test_star_graph_collapses_to_trivial_subproblems(self):
        """Freezing the hub of a star leaves an edgeless sub-problem whose
        QAOA circuit has no two-qubit gates at all."""
        problem = IsingHamiltonian.from_graph(star_graph(9))
        device = get_backend("montreal")
        result = FrozenQubitsSolver(num_frozen=1, config=FAST, seed=9).solve(
            problem, device=device
        )
        assert result.template.cx_count == 0
        assert result.best_value == pytest.approx(
            brute_force_minimum(problem).value
        )

    def test_three_regular_pipeline(self):
        """Non-power-law family end to end (Fig. 11 path)."""
        graph = three_regular_graph(10, seed=11)
        problem = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=12)
        device = get_backend("montreal")
        baseline = BaselineQAOA(config=FAST, seed=10).solve(problem, device=device)
        fq = FrozenQubitsSolver(num_frozen=1, config=FAST, seed=10).solve(
            problem, device=device
        )
        fq_arg = approximation_ratio_gap(fq.ev_ideal, fq.ev_noisy)
        # Gains are small on regular graphs but must not be large regressions.
        assert fq_arg < baseline.arg * 1.1

    def test_qubo_application_end_to_end(self):
        """QUBO -> Ising -> FrozenQubits (asymmetric: no pruning) -> exact."""
        rng = np.random.default_rng(13)
        q = rng.normal(size=(8, 8))
        q = (q + q.T) / 2
        problem = qubo_to_ising(q)
        result = FrozenQubitsSolver(num_frozen=1, config=FAST, seed=14).solve(problem)
        assert result.num_circuits_executed == 2  # linear terms: no symmetry
        assert result.best_value == pytest.approx(
            brute_force_minimum(problem).value
        )

    def test_deeper_qaoa_pipeline(self):
        """p=2 end to end (statevector expectation path)."""
        problem = make_problem(6, seed=88)
        config = SolverConfig(
            shots=1024, grid_resolution=6, maxiter=25, num_layers=2
        )
        result = FrozenQubitsSolver(num_frozen=1, config=config, seed=15).solve(
            problem, device=get_backend("mumbai")
        )
        run = next(o.run for o in result.outcomes if o.run is not None)
        assert len(run.optimization.gammas) == 2
        assert result.best_value == pytest.approx(
            brute_force_minimum(problem).value
        )

    def test_determinism_of_full_solve(self):
        problem = make_problem(9, seed=99)
        device = get_backend("toronto")
        a = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=16).solve(
            problem, device=device
        )
        b = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=16).solve(
            problem, device=device
        )
        assert a.best_spins == b.best_spins
        assert a.ev_noisy == pytest.approx(b.ev_noisy)
        assert a.frozen_qubits == b.frozen_qubits
