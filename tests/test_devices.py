"""Tests for repro.devices: coupling maps, topologies, calibrations, backends."""

import pytest

from repro.devices import (
    CouplingMap,
    Device,
    get_backend,
    grid_coupling,
    grid_device,
    heavy_hex_coupling,
    heavy_hex_falcon27,
    linear_coupling,
    list_backends,
    ring_coupling,
    uniform_calibration,
)
from repro.devices.calibration import sampled_calibration
from repro.exceptions import DeviceError


class TestCouplingMap:
    def test_basic_queries(self):
        coupling = CouplingMap(3, [(0, 1), (1, 2)])
        assert coupling.num_qubits == 3
        assert coupling.num_edges == 2
        assert coupling.are_adjacent(1, 0)
        assert not coupling.are_adjacent(0, 2)
        assert coupling.neighbors(1) == (0, 2)
        assert coupling.degree(1) == 2

    def test_duplicate_edges_collapse(self):
        coupling = CouplingMap(2, [(0, 1), (1, 0)])
        assert coupling.num_edges == 1

    def test_self_coupling_rejected(self):
        with pytest.raises(DeviceError):
            CouplingMap(2, [(0, 0)])

    def test_distances_on_line(self):
        coupling = linear_coupling(5)
        assert coupling.distance(0, 4) == 4
        assert coupling.distance(2, 2) == 0

    def test_distance_unreachable_is_minus_one(self):
        coupling = CouplingMap(4, [(0, 1), (2, 3)])
        assert coupling.distance(0, 3) == -1
        assert not coupling.is_connected()

    def test_shortest_path_endpoints_and_contiguity(self):
        coupling = grid_coupling(3, 3)
        path = coupling.shortest_path(0, 8)
        assert path[0] == 0 and path[-1] == 8
        assert len(path) == coupling.distance(0, 8) + 1
        for a, b in zip(path, path[1:]):
            assert coupling.are_adjacent(a, b)

    def test_shortest_path_unreachable_raises(self):
        coupling = CouplingMap(4, [(0, 1), (2, 3)])
        with pytest.raises(DeviceError):
            coupling.shortest_path(0, 2)

    def test_subgraph_retaining_reindexes(self):
        coupling = linear_coupling(5)
        sub = coupling.subgraph_retaining([1, 2, 3])
        assert sub.num_qubits == 3
        assert sub.num_edges == 2
        assert sub.are_adjacent(0, 1)


class TestTopologies:
    def test_grid_edge_count(self):
        coupling = grid_coupling(3, 4)
        assert coupling.num_qubits == 12
        assert coupling.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_grid_rejects_bad_dims(self):
        with pytest.raises(DeviceError):
            grid_coupling(0, 4)

    def test_ring_coupling(self):
        coupling = ring_coupling(5)
        assert coupling.num_edges == 5
        assert all(coupling.degree(q) == 2 for q in range(5))

    def test_falcon27_shape(self):
        coupling = heavy_hex_falcon27()
        assert coupling.num_qubits == 27
        assert coupling.num_edges == 28
        assert coupling.is_connected()
        # Heavy-hex: max degree 3.
        assert max(coupling.degree(q) for q in range(27)) == 3

    def test_heavy_hex_generator_connected(self):
        coupling = heavy_hex_coupling(num_rows=4, row_length=14)
        assert coupling.is_connected()
        assert max(coupling.degree(q) for q in range(coupling.num_qubits)) <= 3

    def test_heavy_hex_trim_exact(self):
        coupling = heavy_hex_coupling(num_rows=4, row_length=14, trim_to=65)
        assert coupling.num_qubits == 65
        assert coupling.is_connected()

    def test_heavy_hex_trim_invalid(self):
        with pytest.raises(DeviceError):
            heavy_hex_coupling(num_rows=2, row_length=4, trim_to=1000)


class TestCalibration:
    def test_uniform_calibration_shape(self):
        coupling = linear_coupling(4)
        cal = uniform_calibration(coupling, cx_error=0.02)
        assert cal.num_qubits == 4
        assert cal.edge_error(1, 0) == 0.02
        assert cal.mean_cx_error() == pytest.approx(0.02)

    def test_edge_error_unknown_edge(self):
        cal = uniform_calibration(linear_coupling(3))
        with pytest.raises(DeviceError):
            cal.edge_error(0, 2)

    def test_gate_duration_defaults(self):
        cal = uniform_calibration(linear_coupling(2))
        assert cal.gate_duration("cx") == 400.0
        assert cal.gate_duration("rz") == 0.0
        assert cal.gate_duration("unknown") == 0.0

    def test_sampled_calibration_in_bounds(self):
        coupling = heavy_hex_falcon27()
        cal = sampled_calibration(coupling, seed=0)
        assert all(2e-3 <= e <= 0.12 for e in cal.cx_error.values())
        assert all(3e-3 <= e <= 0.2 for e in cal.readout_error)
        assert all(20.0 <= t <= 350.0 for t in cal.t1_us)

    def test_sampled_calibration_deterministic(self):
        coupling = linear_coupling(5)
        a = sampled_calibration(coupling, seed=3)
        b = sampled_calibration(coupling, seed=3)
        assert a.cx_error == b.cx_error

    def test_device_rejects_mismatched_calibration(self):
        coupling = linear_coupling(3)
        cal = uniform_calibration(linear_coupling(4))
        with pytest.raises(DeviceError):
            Device(name="bad", coupling=coupling, calibration=cal)


class TestBackends:
    def test_all_backends_materialise(self):
        expected = {
            "ibm_montreal": 27, "ibm_toronto": 27, "ibm_mumbai": 27,
            "ibm_auckland": 27, "ibm_hanoi": 27, "ibm_cairo": 27,
            "ibm_brooklyn": 65, "ibm_washington": 127,
        }
        assert set(list_backends()) == set(expected)
        for name, qubits in expected.items():
            device = get_backend(name)
            assert device.num_qubits == qubits
            assert device.coupling.is_connected()

    def test_short_names_accepted(self):
        assert get_backend("montreal").name == "ibm_montreal"

    def test_unknown_backend_raises(self):
        with pytest.raises(DeviceError):
            get_backend("ibm_nowhere")

    def test_backends_have_distinct_noise_profiles(self):
        """Fig. 13 depends on machine-to-machine variation."""
        errors = {
            name: get_backend(name).calibration.mean_cx_error()
            for name in list_backends()
        }
        assert len({round(e, 6) for e in errors.values()}) > 4

    def test_backend_cached(self):
        assert get_backend("cairo") is get_backend("cairo")

    def test_grid_device_defaults_match_paper(self):
        device = grid_device(5, 5)
        cal = device.calibration
        assert cal.edge_error(0, 1) == 0.001  # 0.1% CX (Sec. 6.3)
        assert cal.readout_error[0] == 0.005  # 0.5% readout
        assert cal.t1_us[0] == 500.0  # 500 us decoherence

    def test_best_edges_sorted(self):
        device = get_backend("mumbai")
        edges = device.best_edges()
        errors = [device.calibration.edge_error(*e) for e in edges]
        assert errors == sorted(errors)
