"""Multi-process sharing of one sharded :class:`~repro.cache.SolveCache`.

The satellite contract: two processes hammering the same cache
directory — one with every disk write torn mid-payload, the other with
every disk write raising ``OSError`` — must never observe a corrupt
*hit* (a value whose content does not match its key). Torn artifacts
surface only as counted ``"corrupt"`` misses (tallied and unlinked),
failed writes only as counted ``"write_error"`` entries, and neither
process ever sees an exception escape the cache.

The workers are real ``multiprocessing`` children writing their verdict
to JSON files, so the test exercises genuine cross-process filesystem
interleaving, not thread-level simulation.
"""

from __future__ import annotations

import json
import multiprocessing
import os

from repro.cache import SolveCache
from repro.faults import FaultInjection

_KEYS = [f"deadbeef{i:02d}" for i in range(12)]
_ROUNDS = 15


def _hammer_worker(cache_dir: str, worker_id: int, out_path: str) -> None:
    """One process's share of the hammering (module-level: picklable).

    Worker 0 tears every disk write it makes (readers must classify the
    remains as corrupt); worker 1's writes all raise ``OSError`` (its
    cache degrades to memory-only and tallies). Both read every key each
    round with a rebuild that *verifies content against the key*, so a
    torn artifact sneaking through as a hit would be caught.
    """
    if worker_id == 0:
        injection = FaultInjection(torn_cache_kinds=("demo",))
    else:
        injection = FaultInjection(cache_write_error_kinds=("demo",))
    verdict = {"bad_hits": [], "error": None}
    try:
        import warnings

        with warnings.catch_warnings():
            # Worker 1's first failed write warns about degrading to
            # memory-only; that is the behaviour under test, not noise.
            warnings.simplefilter("ignore", RuntimeWarning)
            cache = SolveCache(
                cache_dir=cache_dir,
                fault_injection=injection,
                shard_depth=2,
                shard_width=1,
            )
            for _ in range(_ROUNDS):
                for key in _KEYS:
                    value = cache.get(
                        "demo",
                        key,
                        rebuild=lambda p, k=key: p if p.get("key") == k else None,
                    )
                    if value is not None and value.get("key") != key:
                        verdict["bad_hits"].append(key)
                for key in _KEYS:
                    payload = {"key": key, "writer": worker_id}
                    cache.put("demo", key, dict(payload), payload=payload)
                # Drop the memory tier so the next round's reads must go
                # through the (contested, fault-ridden) disk tier.
                cache.clear()
            verdict["stats"] = cache.stats_snapshot().get("demo", {})
    except Exception as exc:  # noqa: BLE001 — the cache must never raise
        verdict["error"] = f"{type(exc).__name__}: {exc}"
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(verdict, handle)


def test_two_processes_share_a_torn_cache_without_corrupt_hits(tmp_path):
    cache_dir = str(tmp_path / "shared")
    reports = [str(tmp_path / f"verdict{i}.json") for i in range(2)]
    workers = [
        multiprocessing.Process(
            target=_hammer_worker, args=(cache_dir, i, reports[i])
        )
        for i in range(2)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120)
        assert worker.exitcode == 0, f"worker died with {worker.exitcode}"

    verdicts = []
    for path in reports:
        with open(path, encoding="utf-8") as handle:
            verdicts.append(json.load(handle))

    for worker_id, verdict in enumerate(verdicts):
        assert verdict["error"] is None, (
            f"worker {worker_id} raised: {verdict['error']}"
        )
        assert verdict["bad_hits"] == [], (
            f"worker {worker_id} observed corrupt hits: {verdict['bad_hits']}"
        )

    torn_stats, failing_stats = verdicts[0]["stats"], verdicts[1]["stats"]
    # The torn writer's artifacts are the only ones on disk; someone must
    # have tripped over them and counted the corruption.
    total_corrupt = torn_stats.get("corrupt", 0) + failing_stats.get(
        "corrupt", 0
    )
    assert total_corrupt > 0, "torn writes never surfaced as counted corrupt"
    # The failing writer degraded to memory-only and accounted every
    # skipped persist.
    assert failing_stats.get("write_error", 0) > 0
    # Disk hits are allowed — the tear lands an instant after a complete
    # atomic write, so a racing reader may catch the intact artifact —
    # but every hit's content matched its key (bad_hits above), which is
    # the contract: complete or counted-corrupt, never a torn value.


def test_concurrent_openers_agree_on_the_pinned_layout(tmp_path):
    cache_dir = str(tmp_path / "shared")
    first = SolveCache(cache_dir=cache_dir, shard_depth=3, shard_width=1)
    first.put("demo", "abcdef", {"v": 1}, payload={"v": 1})
    # A second opener with clashing constructor arguments adopts the
    # pinned layout and reads the artifact through the same path.
    second = SolveCache(cache_dir=cache_dir, shard_depth=1, shard_width=4)
    assert (second.shard_depth, second.shard_width) == (3, 1)
    assert second.get("demo", "abcdef", rebuild=lambda p: p) == {"v": 1}
    assert os.path.exists(
        os.path.join(cache_dir, "demo", "a", "b", "c", "abcdef.json")
    )
