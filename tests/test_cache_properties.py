"""Property tests for the content-addressed cache keys.

Hand-rolled, seeded generators (no hypothesis): every case is a plain
``numpy`` draw from a fixed seed, so a failure replays exactly and the
~1k-instance collision sweep stays fast and deterministic.

Properties under test (ISSUE 3):

* canonical Ising keys are invariant under variable relabeling,
* invariant under the global sign flip ``h -> -h`` (and the combination),
* collision-free across ~1k random non-equivalent instances,
* exact fingerprints and circuit fingerprints separate unequal content.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.keys import (
    canonical_ising_key,
    circuit_fingerprint,
    ising_fingerprint,
    rehydrate_spins,
)
from repro.circuit.circuit import QuantumCircuit
from repro.ising.hamiltonian import IsingHamiltonian


# ----------------------------------------------------------------------
# Hand-rolled generators
# ----------------------------------------------------------------------
def random_hamiltonian(
    rng: np.random.Generator,
    min_qubits: int = 2,
    max_qubits: int = 9,
    weight_pool: "tuple[float, ...] | None" = None,
    with_linear: bool = True,
) -> IsingHamiltonian:
    """One random Ising instance.

    Args:
        rng: Source of all randomness.
        min_qubits: Smallest size drawn.
        max_qubits: Largest size drawn.
        weight_pool: Draw couplings from this finite set (creates weight
            collisions, stressing the graph-structure part of the key);
            ``None`` draws continuous uniforms (distinct instances almost
            surely non-equivalent).
        with_linear: Give roughly half the qubits a non-zero ``h``.
    """
    n = int(rng.integers(min_qubits, max_qubits + 1))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    density = rng.uniform(0.2, 0.9)
    quadratic = {}
    for pair in pairs:
        if rng.random() < density:
            if weight_pool is not None:
                weight = float(rng.choice(weight_pool))
            else:
                weight = float(rng.uniform(-2.0, 2.0))
            if weight != 0.0:
                quadratic[pair] = weight
    linear = {}
    if with_linear:
        for qubit in range(n):
            if rng.random() < 0.5:
                if weight_pool is not None:
                    value = float(rng.choice(weight_pool))
                else:
                    value = float(rng.uniform(-2.0, 2.0))
                if value != 0.0:
                    linear[qubit] = value
    offset = float(rng.uniform(-1.0, 1.0))
    return IsingHamiltonian(n, linear=linear, quadratic=quadratic, offset=offset)


def relabel(
    hamiltonian: IsingHamiltonian, permutation: "list[int]"
) -> IsingHamiltonian:
    """The instance with variable ``i`` renamed ``permutation[i]``."""
    n = hamiltonian.num_qubits
    linear = {
        permutation[i]: value
        for i, value in enumerate(hamiltonian.linear)
        if value != 0.0
    }
    quadratic = {}
    for (i, j), value in hamiltonian.quadratic.items():
        a, b = permutation[i], permutation[j]
        quadratic[(min(a, b), max(a, b))] = value
    return IsingHamiltonian(
        n, linear=linear, quadratic=quadratic, offset=hamiltonian.offset
    )


def flip(hamiltonian: IsingHamiltonian) -> IsingHamiltonian:
    """The globally sign-flipped instance (``h -> -h``; J, offset kept)."""
    return IsingHamiltonian(
        hamiltonian.num_qubits,
        linear=[-v for v in hamiltonian.linear],
        quadratic=hamiltonian.quadratic,
        offset=hamiltonian.offset,
    )


# ----------------------------------------------------------------------
# Invariance
# ----------------------------------------------------------------------
def test_canonical_key_invariant_under_relabeling():
    rng = np.random.default_rng(101)
    for trial in range(60):
        pool = (-1.0, 1.0) if trial % 2 else None
        hamiltonian = random_hamiltonian(rng, weight_pool=pool)
        key = canonical_ising_key(hamiltonian)
        assert key.complete
        for _ in range(3):
            permutation = list(rng.permutation(hamiltonian.num_qubits))
            permuted_key = canonical_ising_key(relabel(hamiltonian, permutation))
            assert permuted_key.digest == key.digest


def test_canonical_key_invariant_under_global_flip():
    rng = np.random.default_rng(202)
    for _ in range(60):
        hamiltonian = random_hamiltonian(rng)
        key = canonical_ising_key(hamiltonian)
        flipped_key = canonical_ising_key(flip(hamiltonian))
        assert flipped_key.digest == key.digest
        # At most one of the pair reports the flip as its canonical side.
        if not hamiltonian.has_zero_linear():
            assert key.flipped != flipped_key.flipped


def test_canonical_key_invariant_under_relabel_and_flip_composed():
    rng = np.random.default_rng(303)
    for _ in range(40):
        hamiltonian = random_hamiltonian(rng, weight_pool=(-1.0, 0.5, 1.0))
        key = canonical_ising_key(hamiltonian)
        permutation = list(rng.permutation(hamiltonian.num_qubits))
        transformed = flip(relabel(hamiltonian, permutation))
        assert canonical_ising_key(transformed).digest == key.digest


def test_canonical_permutation_is_a_valid_witness():
    """The recorded permutation/flip really map canonical spins back."""
    rng = np.random.default_rng(404)
    for _ in range(25):
        hamiltonian = random_hamiltonian(rng, max_qubits=6)
        key = canonical_ising_key(hamiltonian)
        n = hamiltonian.num_qubits
        # Build the canonical representative explicitly and check that
        # evaluating it at z equals evaluating the original at the
        # rehydrated assignment.
        canonical_spins = tuple(
            int(s) for s in rng.choice((-1, 1), size=n)
        )
        original_spins = rehydrate_spins(canonical_spins, key)
        base = flip(hamiltonian) if key.flipped else hamiltonian
        mapped = relabel(base, list(key.permutation))
        assert hamiltonian.evaluate(original_spins) == pytest.approx(
            mapped.evaluate(canonical_spins)
        )


# ----------------------------------------------------------------------
# Collision-freedom
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_canonical_key_collision_free_across_random_instances():
    """~1k random continuous-weight instances -> pairwise distinct keys.

    Continuous coupling draws make accidental isomorphism a measure-zero
    event, so every pair of generated instances is non-equivalent and any
    digest collision is a genuine key defect.
    """
    rng = np.random.default_rng(505)
    digests = {}
    for index in range(1000):
        hamiltonian = random_hamiltonian(rng, min_qubits=2, max_qubits=10)
        key = canonical_ising_key(hamiltonian)
        assert key.complete
        assert key.digest not in digests, (
            f"instance {index} collided with instance {digests[key.digest]}"
        )
        digests[key.digest] = index
    assert len(digests) == 1000


@pytest.mark.slow
def test_canonical_key_separates_near_equivalent_instances():
    """Perturbing one coefficient (h, J, or offset) must change the key."""
    rng = np.random.default_rng(606)
    for _ in range(50):
        hamiltonian = random_hamiltonian(rng, min_qubits=3, max_qubits=8)
        base = canonical_ising_key(hamiltonian).digest
        if hamiltonian.quadratic:
            pair, value = next(iter(hamiltonian.quadratic.items()))
            bumped = dict(hamiltonian.quadratic)
            bumped[pair] = value + 0.125
            changed = IsingHamiltonian(
                hamiltonian.num_qubits,
                linear=hamiltonian.linear,
                quadratic=bumped,
                offset=hamiltonian.offset,
            )
            assert canonical_ising_key(changed).digest != base
        shifted = hamiltonian.with_offset(hamiltonian.offset + 0.25)
        assert canonical_ising_key(shifted).digest != base
        with_linear = IsingHamiltonian(
            hamiltonian.num_qubits,
            linear={0: hamiltonian.linear_coefficient(0) + 0.5},
            quadratic=hamiltonian.quadratic,
            offset=hamiltonian.offset,
        )
        assert canonical_ising_key(with_linear).digest != base


def test_canonical_key_handles_symmetric_unweighted_graphs():
    """Highly symmetric instances (cycles, uniform weights) still refine."""
    for n in (4, 6, 8):
        cycle = IsingHamiltonian(
            n, quadratic={(i, (i + 1) % n): 1.0 for i in range(n)}
        )
        rotated = relabel(cycle, [(i + 2) % n for i in range(n)])
        assert (
            canonical_ising_key(cycle).digest
            == canonical_ising_key(rotated).digest
        )
        path = IsingHamiltonian(
            n, quadratic={(i, i + 1): 1.0 for i in range(n - 1)}
        )
        assert (
            canonical_ising_key(path).digest
            != canonical_ising_key(cycle).digest
        )


# ----------------------------------------------------------------------
# Exact fingerprints
# ----------------------------------------------------------------------
def test_exact_fingerprint_is_content_equality():
    rng = np.random.default_rng(707)
    for _ in range(30):
        hamiltonian = random_hamiltonian(rng)
        clone = IsingHamiltonian(
            hamiltonian.num_qubits,
            linear=hamiltonian.linear,
            quadratic=hamiltonian.quadratic,
            offset=hamiltonian.offset,
        )
        assert ising_fingerprint(clone) == ising_fingerprint(hamiltonian)
        if hamiltonian.num_qubits >= 2:
            permutation = list(rng.permutation(hamiltonian.num_qubits))
            permuted = relabel(hamiltonian, permutation)
            if permuted != hamiltonian:
                # Exact keys do NOT fold relabeling — that is the
                # canonical key's job.
                assert ising_fingerprint(permuted) != ising_fingerprint(
                    hamiltonian
                )


def test_exact_fingerprint_normalises_negative_zero():
    a = IsingHamiltonian(2, linear=[0.0, 1.0], quadratic={(0, 1): 1.0})
    b = IsingHamiltonian(2, linear=[-0.0, 1.0], quadratic={(0, 1): 1.0})
    assert ising_fingerprint(a) == ising_fingerprint(b)


def test_circuit_fingerprint_tracks_structure_and_angles():
    def build(angle: float, tag: "str | None" = "lin:0") -> QuantumCircuit:
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.rz(angle, 0, tag=tag)
        circuit.cx(0, 1)
        circuit.measure_all()
        return circuit

    base = circuit_fingerprint(build(0.5))
    assert circuit_fingerprint(build(0.5)) == base
    assert circuit_fingerprint(build(0.75)) != base
    assert circuit_fingerprint(build(0.5, tag="lin:1")) != base
    reordered = QuantumCircuit(2)
    reordered.rz(0.5, 0, tag="lin:0")
    reordered.h(0)
    reordered.cx(0, 1)
    reordered.measure_all()
    assert circuit_fingerprint(reordered) != base


def test_circuit_fingerprint_distinguishes_symbolic_coefficients():
    from repro.qaoa.circuits import build_qaoa_template

    a = build_qaoa_template(
        IsingHamiltonian(3, quadratic={(0, 1): 1.0, (1, 2): -1.0})
    )
    b = build_qaoa_template(
        IsingHamiltonian(3, quadratic={(0, 1): 1.0, (1, 2): 1.0})
    )
    assert circuit_fingerprint(a.circuit) != circuit_fingerprint(b.circuit)
    rebuilt = build_qaoa_template(
        IsingHamiltonian(3, quadratic={(0, 1): 1.0, (1, 2): -1.0})
    )
    assert circuit_fingerprint(a.circuit) == circuit_fingerprint(
        rebuilt.circuit
    )
