"""Tests for the perf-record diff tool's regression gate."""

from __future__ import annotations

import json
import sys

import pytest

sys.path.insert(0, ".")  # benchmarks/ is a top-level package in this repo
from benchmarks.compare_bench import find_regressions, main  # noqa: E402


def _write(directory, record):
    directory.mkdir(exist_ok=True)
    path = directory / f"BENCH_{record['bench']}.json"
    path.write_text(json.dumps(record), encoding="utf-8")


@pytest.fixture
def dirs(tmp_path):
    baseline = tmp_path / "baseline"
    current = tmp_path / "current"
    _write(
        baseline,
        {
            "bench": "opt",
            "speedup": 4.0,
            "evaluation_ratio": 8.0,
            "sweep": {"seconds": 2.0},
        },
    )
    return baseline, current


class TestFindRegressions:
    def test_ratio_drop_past_threshold_is_a_regression(self, dirs):
        baseline, current = dirs
        _write(
            current,
            {"bench": "opt", "speedup": 2.0, "evaluation_ratio": 8.0},
        )
        hits = find_regressions(str(baseline), str(current), 0.25)
        assert len(hits) == 1
        assert "speedup" in hits[0]

    def test_drop_within_threshold_passes(self, dirs):
        baseline, current = dirs
        _write(
            current,
            {"bench": "opt", "speedup": 3.5, "evaluation_ratio": 7.5},
        )
        assert find_regressions(str(baseline), str(current), 0.25) == []

    def test_seconds_are_never_gated(self, dirs):
        """Raw wall-clocks vary by machine — only ratios gate."""
        baseline, current = dirs
        _write(
            current,
            {
                "bench": "opt",
                "speedup": 4.0,
                "evaluation_ratio": 8.0,
                "sweep": {"seconds": 50.0},
            },
        )
        assert find_regressions(str(baseline), str(current), 0.25) == []

    def test_improvements_pass(self, dirs):
        baseline, current = dirs
        _write(
            current,
            {"bench": "opt", "speedup": 9.0, "evaluation_ratio": 20.0},
        )
        assert find_regressions(str(baseline), str(current), 0.25) == []

    def test_baseline_only_record_warns_and_skips(self, dirs, capsys):
        """A retired/missing bench can't be gated — warn, don't pass silently."""
        baseline, current = dirs
        _write(current, {"bench": "other", "speedup": 1.0})
        assert find_regressions(str(baseline), str(current), 0.25) == []
        out = capsys.readouterr().out
        assert "! [opt] no current record" in out
        assert "! [other] no baseline record" in out

    def test_current_only_record_is_not_gated(self, dirs, capsys):
        """A brand-new bench has no baseline to regress against."""
        baseline, current = dirs
        _write(
            current,
            {"bench": "opt", "speedup": 4.0, "evaluation_ratio": 8.0},
        )
        _write(current, {"bench": "new", "speedup": 0.01})
        assert find_regressions(str(baseline), str(current), 0.25) == []
        assert "! [new] no baseline record" in capsys.readouterr().out


class TestMainExitCode:
    def test_regression_exits_nonzero(self, dirs, capsys):
        baseline, current = dirs
        _write(current, {"bench": "opt", "speedup": 1.0})
        code = main(
            [str(baseline), str(current), "--fail-threshold", "0.25"]
        )
        assert code == 1
        assert "REGRESSIONS" in capsys.readouterr().out

    def test_clean_run_exits_zero(self, dirs):
        baseline, current = dirs
        _write(
            current,
            {"bench": "opt", "speedup": 4.0, "evaluation_ratio": 8.0},
        )
        assert main(
            [str(baseline), str(current), "--fail-threshold", "0.25"]
        ) == 0

    def test_without_flag_stays_informational(self, dirs):
        baseline, current = dirs
        _write(current, {"bench": "opt", "speedup": 0.5})
        assert main([str(baseline), str(current)]) == 0
