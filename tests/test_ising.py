"""Tests for repro.ising: Hamiltonians, freezing (Table 2), symmetry,
classical solvers, QUBO conversion."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import FreezeError, HamiltonianError
from repro.graphs.generators import barabasi_albert_graph, star_graph
from repro.ising import (
    IsingHamiltonian,
    brute_force_minimum,
    count_ground_states,
    decode_spins,
    energy_table,
    freeze_qubit,
    freeze_qubits,
    frozen_assignments,
    has_spin_flip_symmetry,
    ising_to_qubo,
    qubo_to_ising,
    simulated_annealing,
    verify_spin_flip_symmetry,
)
from tests.conftest import hamiltonian_strategy, spins_strategy


class TestHamiltonianConstruction:
    def test_basic_evaluation(self):
        h = IsingHamiltonian(2, linear=[1.0, -1.0], quadratic={(0, 1): 2.0}, offset=0.5)
        assert h.evaluate((1, 1)) == pytest.approx(1 - 1 + 2 + 0.5)
        assert h.evaluate((-1, 1)) == pytest.approx(-1 - 1 - 2 + 0.5)

    def test_sparse_linear_mapping(self):
        h = IsingHamiltonian(4, linear={2: 3.0})
        assert h.linear_coefficient(2) == 3.0
        assert h.linear_coefficient(0) == 0.0

    def test_linear_length_mismatch(self):
        with pytest.raises(HamiltonianError):
            IsingHamiltonian(3, linear=[1.0, 2.0])

    def test_quadratic_key_normalised(self):
        h = IsingHamiltonian(3, quadratic={(2, 0): 1.5})
        assert h.quadratic_coefficient(0, 2) == 1.5
        assert (0, 2) in h.quadratic

    def test_duplicate_pair_rejected(self):
        with pytest.raises(HamiltonianError):
            IsingHamiltonian(3, quadratic={(0, 1): 1.0, (1, 0): 2.0})

    def test_diagonal_rejected(self):
        with pytest.raises(HamiltonianError):
            IsingHamiltonian(3, quadratic={(1, 1): 1.0})

    def test_zero_coupling_dropped(self):
        h = IsingHamiltonian(3, quadratic={(0, 1): 0.0})
        assert h.num_terms == 0

    def test_out_of_range_qubit(self):
        with pytest.raises(HamiltonianError):
            IsingHamiltonian(2, quadratic={(0, 2): 1.0})

    def test_degree_and_neighbors(self):
        h = IsingHamiltonian(4, quadratic={(0, 1): 1, (0, 2): 1, (2, 3): 1})
        assert h.degree(0) == 2
        assert h.neighbors(0) == (1, 2)
        assert h.neighbors(3) == (2,)

    def test_evaluate_rejects_bad_spins(self):
        h = IsingHamiltonian(2, quadratic={(0, 1): 1.0})
        with pytest.raises(HamiltonianError):
            h.evaluate((1, 0))
        with pytest.raises(HamiltonianError):
            h.evaluate((1, 1, 1))

    def test_evaluate_many_matches_single(self, rng):
        h = IsingHamiltonian(
            5,
            linear=rng.normal(size=5),
            quadratic={(0, 1): 1.0, (2, 4): -2.0, (1, 3): 0.5},
            offset=1.25,
        )
        batch = rng.choice((-1.0, 1.0), size=(20, 5))
        vectorised = h.evaluate_many(batch)
        for row, value in zip(batch, vectorised):
            assert value == pytest.approx(h.evaluate(tuple(int(s) for s in row)))

    def test_energy_landscape_size_guard(self):
        h = IsingHamiltonian(27)
        with pytest.raises(HamiltonianError):
            h.energy_landscape()

    @pytest.mark.parametrize("trial", range(5))
    def test_energy_landscape_matches_reference_sign_matrix(self, trial):
        """The O(2^n) bit-doubling recurrence agrees with the per-term
        sign-matrix sum it replaced, to 1e-12 on random coefficients."""
        rng = np.random.default_rng(200 + trial)
        n = int(rng.integers(2, 11))
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        keep = rng.random(len(pairs)) < 0.5
        quadratic = {
            pair: float(rng.normal())
            for pair, kept in zip(pairs, keep)
            if kept
        }
        h = IsingHamiltonian(
            n,
            linear=rng.normal(size=n),
            quadratic=quadratic,
            offset=float(rng.normal()),
        )
        landscape = h.energy_landscape()
        # Reference: evaluate every basis state directly.
        states = np.arange(2**n)
        spins = 1.0 - 2.0 * (
            (states[:, None] >> np.arange(n)[None, :]) & 1
        )
        reference = h.evaluate_many(spins)
        np.testing.assert_allclose(landscape, reference, atol=1e-12, rtol=0)

    def test_energy_landscape_exact_on_integer_coefficients(self):
        """Integer-coefficient instances (the benchmarks) stay bit-exact."""
        h = IsingHamiltonian(
            6,
            linear=[1, -2, 0, 3, -1, 2],
            quadratic={(0, 1): 1.0, (1, 3): -2.0, (2, 5): 1.0, (4, 5): 3.0},
            offset=2.0,
        )
        landscape = h.energy_landscape()
        states = np.arange(2**6)
        spins = 1.0 - 2.0 * ((states[:, None] >> np.arange(6)[None, :]) & 1)
        assert (landscape == h.evaluate_many(spins)).all()

    def test_from_graph_uses_weights(self):
        graph = star_graph(4)
        h = IsingHamiltonian.from_graph(graph)
        assert h.num_terms == 3
        assert h.has_zero_linear()

    def test_from_graph_random_pm1(self):
        graph = barabasi_albert_graph(10, 1, seed=0)
        h = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=1)
        assert all(abs(j) == 1.0 for j in h.quadratic.values())

    def test_from_graph_unknown_mode(self):
        with pytest.raises(HamiltonianError):
            IsingHamiltonian.from_graph(star_graph(3), weights="bogus")

    def test_scaled(self):
        h = IsingHamiltonian(2, linear=[1, 0], quadratic={(0, 1): 2.0}, offset=3.0)
        doubled = h.scaled(2.0)
        assert doubled.offset == 6.0
        assert doubled.quadratic_coefficient(0, 1) == 4.0
        assert doubled.linear_coefficient(0) == 2.0

    def test_dict_roundtrip(self):
        h = IsingHamiltonian(3, linear=[0, 1, -1], quadratic={(0, 2): -1.0}, offset=0.5)
        assert IsingHamiltonian.from_dict(h.to_dict()) == h

    def test_to_graph_roundtrip_edges(self):
        h = IsingHamiltonian(4, quadratic={(0, 1): 1.0, (2, 3): -1.0})
        graph = h.to_graph()
        assert graph.num_edges == 2
        assert graph.weight(2, 3) == -1.0


class TestFreezing:
    def test_paper_table2_coefficients(self):
        """Freezing updates follow Table 2 exactly."""
        h = IsingHamiltonian(
            3, linear=[0.5, 0.0, 0.0], quadratic={(0, 1): 2.0, (1, 2): -1.0}, offset=1.0
        )
        # Freeze qubit 1 to +1: h0 += J01; h2 += J12; offset += h1 (= 0).
        sub, spec = freeze_qubits(h, [1], [1])
        assert sub.num_qubits == 2
        assert sub.linear_coefficient(0) == pytest.approx(0.5 + 2.0)
        assert sub.linear_coefficient(1) == pytest.approx(-1.0)
        assert sub.offset == pytest.approx(1.0)
        assert sub.num_terms == 0
        assert spec.kept_qubits == (0, 2)

    def test_freeze_minus_one(self):
        h = IsingHamiltonian(2, linear=[0.0, 3.0], quadratic={(0, 1): 2.0})
        sub = freeze_qubit(h, 1, -1)
        assert sub.linear_coefficient(0) == pytest.approx(-2.0)
        assert sub.offset == pytest.approx(-3.0)

    def test_freeze_both_endpoints_constant_absorbed(self):
        h = IsingHamiltonian(3, quadratic={(0, 1): 2.0, (1, 2): 1.0})
        sub, __ = freeze_qubits(h, [0, 1], [1, -1])
        assert sub.num_qubits == 1
        assert sub.offset == pytest.approx(2.0 * 1 * -1)
        assert sub.linear_coefficient(0) == pytest.approx(-1.0)

    def test_freeze_duplicate_rejected(self):
        h = IsingHamiltonian(3, quadratic={(0, 1): 1.0})
        with pytest.raises(FreezeError):
            freeze_qubits(h, [0, 0], [1, 1])

    def test_freeze_bad_value_rejected(self):
        h = IsingHamiltonian(2, quadratic={(0, 1): 1.0})
        with pytest.raises(FreezeError):
            freeze_qubit(h, 0, 0)

    def test_freeze_length_mismatch(self):
        h = IsingHamiltonian(2)
        with pytest.raises(FreezeError):
            freeze_qubits(h, [0], [1, -1])

    def test_frozen_assignments_order(self):
        assignments = frozen_assignments(2)
        assert list(assignments) == [(1, 1), (1, -1), (-1, 1), (-1, -1)]

    def test_frozen_assignments_negative_rejected(self):
        with pytest.raises(FreezeError):
            frozen_assignments(-1)

    def test_frozen_assignments_lazy_indexing(self):
        # The sequence is O(1) memory: len/indexing work far beyond any
        # materializable enumeration.
        assignments = frozen_assignments(50)
        assert len(assignments) == 2**50
        assert assignments[0] == (1,) * 50
        assert assignments[-1] == (-1,) * 50
        assert assignments[1] == (1,) * 49 + (-1,)
        assert assignments.index_of(assignments[3_000_000_007]) == 3_000_000_007
        with pytest.raises(IndexError):
            assignments[2**50]

    def test_frozen_assignments_guard_threshold(self):
        from repro.ising.freeze import MAX_FROZEN_QUBITS

        frozen_assignments(MAX_FROZEN_QUBITS)  # at the guard: fine
        with pytest.raises(FreezeError):
            frozen_assignments(MAX_FROZEN_QUBITS + 1)

    def test_sub_index_matches_linear_scan(self):
        # Regression pin for the O(1) sub-index map: identical answers to
        # the historical tuple.index scan, including the error cases.
        h = IsingHamiltonian(97, quadratic={(0, 96): 1.0})
        __, spec = freeze_qubits(h, [5, 41, 90], [1, -1, 1])
        for original in range(97):
            if original in (5, 41, 90):
                with pytest.raises(FreezeError):
                    spec.sub_index(original)
            else:
                assert spec.sub_index(original) == spec.kept_qubits.index(original)
        with pytest.raises(FreezeError):
            spec.sub_index(97)

    def test_decode_roundtrip(self):
        h = IsingHamiltonian(5, quadratic={(0, 4): 1.0, (1, 3): 1.0})
        sub, spec = freeze_qubits(h, [4, 1], [-1, 1])
        full = decode_spins(spec, [-1, 1], [1, -1, 1])
        assert full == (1, 1, -1, 1, -1)

    def test_decode_validates_lengths(self):
        h = IsingHamiltonian(3, quadratic={(0, 1): 1.0})
        __, spec = freeze_qubits(h, [0], [1])
        with pytest.raises(FreezeError):
            decode_spins(spec, [1, 1], [1, 1])
        with pytest.raises(FreezeError):
            decode_spins(spec, [1], [1])

    def test_sub_index_of_frozen_raises(self):
        h = IsingHamiltonian(3)
        __, spec = freeze_qubits(h, [1], [1])
        assert spec.sub_index(2) == 1
        with pytest.raises(FreezeError):
            spec.sub_index(1)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), hamiltonian=hamiltonian_strategy(max_qubits=6))
    def test_freeze_preserves_cost_property(self, data, hamiltonian):
        """THE core invariant (Eqs. 2-3): the sub-problem cost at any point
        equals the parent cost at the decoded point."""
        n = hamiltonian.num_qubits
        if n < 2:
            return
        m = data.draw(st.integers(min_value=1, max_value=n - 1))
        qubits = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=m,
                max_size=m,
                unique=True,
            )
        )
        values = data.draw(st.tuples(*([st.sampled_from((-1, 1))] * m)))
        sub, spec = freeze_qubits(hamiltonian, qubits, list(values))
        sub_point = data.draw(spins_strategy(sub.num_qubits))
        full_point = decode_spins(spec, values, sub_point)
        assert sub.evaluate(sub_point) == pytest.approx(
            hamiltonian.evaluate(full_point), abs=1e-9
        )

    def test_union_of_subspaces_covers_parent(self, paper_fig5_hamiltonian):
        """Paper Fig. 5: the two sub-problem tables together enumerate the
        parent's full state space with identical costs."""
        h = paper_fig5_hamiltonian
        parent = {spins: cost for spins, cost in energy_table(h)}
        seen = {}
        for value in (1, -1):
            sub, spec = freeze_qubits(h, [3], [value])
            for sub_spins, cost in energy_table(sub):
                full = decode_spins(spec, [value], sub_spins)
                seen[full] = cost
        assert seen == pytest.approx(parent)


class TestSymmetry:
    def test_zero_linear_is_symmetric(self, paper_fig5_hamiltonian):
        assert has_spin_flip_symmetry(paper_fig5_hamiltonian)
        assert verify_spin_flip_symmetry(paper_fig5_hamiltonian, seed=0)

    def test_nonzero_linear_not_symmetric(self):
        h = IsingHamiltonian(2, linear=[1.0, 0.0], quadratic={(0, 1): 1.0})
        assert not has_spin_flip_symmetry(h)

    def test_offset_does_not_break_symmetry(self):
        h = IsingHamiltonian(2, quadratic={(0, 1): 1.0}, offset=5.0)
        assert has_spin_flip_symmetry(h)
        assert verify_spin_flip_symmetry(h, seed=1)

    def test_ground_state_count_even_under_symmetry(self):
        """Paper Sec. 3.7.2: symmetric landscapes have an even number of
        global minima."""
        graph = barabasi_albert_graph(8, 1, seed=10)
        h = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=11)
        assert count_ground_states(h) % 2 == 0

    @settings(max_examples=40, deadline=None)
    @given(hamiltonian=hamiltonian_strategy(max_qubits=6), data=st.data())
    def test_symmetry_theorem_property(self, hamiltonian, data):
        """C(z) == C(-z) whenever h == 0 (the paper's theorem)."""
        n = hamiltonian.num_qubits
        zeroed = IsingHamiltonian(
            n, quadratic=hamiltonian.quadratic, offset=hamiltonian.offset
        )
        point = data.draw(spins_strategy(n))
        flipped = tuple(-s for s in point)
        assert zeroed.evaluate(point) == pytest.approx(zeroed.evaluate(flipped))

    def test_mirror_subproblem_relation(self, small_ba_hamiltonian):
        """H_sub^{-a}(z) == H_sub^{+a}(-z) for symmetric parents."""
        h = small_ba_hamiltonian
        hotspot = h.to_graph().max_degree_node()
        plus = freeze_qubit(h, hotspot, 1)
        minus = freeze_qubit(h, hotspot, -1)
        rng = np.random.default_rng(3)
        for __ in range(20):
            z = tuple(int(s) for s in rng.choice((-1, 1), size=plus.num_qubits))
            flipped = tuple(-s for s in z)
            assert minus.evaluate(z) == pytest.approx(plus.evaluate(flipped))


class TestBruteForce:
    def test_known_minimum(self):
        # Antiferromagnetic pair: min at opposite spins, value -1.
        h = IsingHamiltonian(2, quadratic={(0, 1): 1.0})
        result = brute_force_minimum(h)
        assert result.value == -1.0
        assert result.spins[0] != result.spins[1]
        assert result.maximum == 1.0

    def test_zero_qubit_rejected(self):
        with pytest.raises(HamiltonianError):
            brute_force_minimum(IsingHamiltonian(0))

    def test_energy_table_complete(self):
        h = IsingHamiltonian(3, quadratic={(0, 1): 1.0})
        table = energy_table(h)
        assert len(table) == 8
        assert all(len(spins) == 3 for spins, __ in table)

    def test_minimum_consistent_with_table(self, small_ba_hamiltonian):
        result = brute_force_minimum(small_ba_hamiltonian)
        table_min = min(cost for __, cost in energy_table(small_ba_hamiltonian))
        assert result.value == pytest.approx(table_min)


class TestAnnealer:
    def test_finds_exact_optimum_small(self, small_ba_hamiltonian):
        exact = brute_force_minimum(small_ba_hamiltonian).value
        result = simulated_annealing(small_ba_hamiltonian, seed=0)
        assert result.value == pytest.approx(exact)

    def test_respects_restart_and_sweep_counts(self):
        h = IsingHamiltonian(4, quadratic={(0, 1): 1.0, (2, 3): -1.0})
        result = simulated_annealing(h, num_sweeps=10, num_restarts=2, seed=1)
        assert result.num_sweeps == 10
        assert result.num_restarts == 2

    def test_invalid_temperatures_rejected(self):
        h = IsingHamiltonian(2, quadratic={(0, 1): 1.0})
        with pytest.raises(HamiltonianError):
            simulated_annealing(h, initial_temperature=0.1, final_temperature=1.0)

    def test_zero_qubits_rejected(self):
        with pytest.raises(HamiltonianError):
            simulated_annealing(IsingHamiltonian(0))

    def test_spins_evaluate_to_reported_value(self):
        graph = barabasi_albert_graph(15, 2, seed=4)
        h = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=5)
        result = simulated_annealing(h, seed=6)
        assert h.evaluate(result.spins) == pytest.approx(result.value)


class TestQubo:
    def test_simple_qubo_minimum_matches(self):
        # min x0 + x1 - 3 x0 x1 over binaries is -1 at (1, 1).
        q = np.array([[1.0, -1.5], [-1.5, 1.0]])
        h = qubo_to_ising(q)
        result = brute_force_minimum(h)
        assert result.value == pytest.approx(-1.0)
        assert result.spins == (-1, -1)  # spin -1 == bit 1

    def test_rejects_non_square(self):
        with pytest.raises(HamiltonianError):
            qubo_to_ising(np.zeros((2, 3)))

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_qubo_ising_value_equivalence(self, data):
        """QUBO value at x equals Ising value at z = 1 - 2x, for all x."""
        n = data.draw(st.integers(min_value=1, max_value=5))
        q = np.asarray(
            data.draw(
                st.lists(
                    st.lists(
                        st.floats(-2, 2, allow_nan=False, allow_infinity=False),
                        min_size=n,
                        max_size=n,
                    ),
                    min_size=n,
                    max_size=n,
                )
            )
        )
        bits = np.asarray(data.draw(st.lists(st.sampled_from((0, 1)), min_size=n, max_size=n)))
        h = qubo_to_ising(q, constant=0.5)
        qubo_value = float(bits @ ((q + q.T) / 2.0) @ bits) + 0.5
        spins = tuple(1 - 2 * int(b) for b in bits)
        assert h.evaluate(spins) == pytest.approx(qubo_value, abs=1e-9)

    def test_ising_to_qubo_roundtrip(self, small_ba_hamiltonian):
        q, constant = ising_to_qubo(small_ba_hamiltonian)
        back = qubo_to_ising(q, constant)
        rng = np.random.default_rng(8)
        for __ in range(10):
            z = tuple(int(s) for s in rng.choice((-1, 1), size=back.num_qubits))
            assert back.evaluate(z) == pytest.approx(small_ba_hamiltonian.evaluate(z))
