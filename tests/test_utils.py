"""Tests for repro.utils: bitstring codecs, RNG plumbing, validation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.bitstrings import (
    bits_to_int,
    bits_to_spins,
    flip_all,
    int_to_bits,
    spins_to_bits,
    spins_to_string,
    string_to_spins,
)
from repro.utils.rng import ensure_rng, spawn_seeds
from repro.utils.validation import (
    check_index,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestIntBits:
    def test_int_to_bits_lsb_first(self):
        assert int_to_bits(6, 4) == (0, 1, 1, 0)

    def test_zero_width(self):
        assert int_to_bits(0, 0) == ()

    def test_value_too_large_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(8, 3)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 3)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(0, -1)

    def test_bits_to_int_inverse(self):
        assert bits_to_int((0, 1, 1, 0)) == 6

    def test_bits_to_int_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bits_to_int((0, 2))

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 16)) == value


class TestSpinCodecs:
    def test_bits_to_spins_convention(self):
        # |0> measures +1, |1> measures -1 (paper Sec. 2.1).
        assert bits_to_spins((0, 1)) == (1, -1)

    def test_spins_to_bits_inverse(self):
        assert spins_to_bits((1, -1)) == (0, 1)

    def test_invalid_bit_rejected(self):
        with pytest.raises(ValueError):
            bits_to_spins((0, 3))

    def test_invalid_spin_rejected(self):
        with pytest.raises(ValueError):
            spins_to_bits((1, 0))

    def test_flip_all(self):
        assert flip_all((1, -1, 1)) == (-1, 1, -1)

    def test_string_roundtrip(self):
        spins = (1, -1, -1, 1)
        assert string_to_spins(spins_to_string(spins)) == spins

    def test_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            string_to_spins("+x")

    def test_spins_to_string_rejects_bad_spin(self):
        with pytest.raises(ValueError):
            spins_to_string((1, 2))

    @given(st.lists(st.sampled_from((0, 1)), max_size=12))
    def test_bits_spins_roundtrip(self, bits):
        assert list(spins_to_bits(bits_to_spins(bits))) == bits


class TestRng:
    def test_ensure_rng_from_int_deterministic(self):
        a = ensure_rng(5).integers(0, 1000, 10)
        b = ensure_rng(5).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_ensure_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_ensure_rng_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_spawn_seeds_deterministic_and_distinct(self):
        seeds = spawn_seeds(9, 16)
        assert seeds == spawn_seeds(9, 16)
        assert len(set(seeds)) > 1

    def test_spawn_seeds_count(self):
        assert len(spawn_seeds(0, 7)) == 7


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1.0)
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_check_non_negative(self):
        check_non_negative("x", 0.0)
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)

    def test_check_probability(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ValueError):
            check_probability("p", 1.2)

    def test_check_index(self):
        check_index("i", 2, 3)
        with pytest.raises(IndexError):
            check_index("i", 3, 3)
