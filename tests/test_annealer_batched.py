"""Property and regression tests for the batched multi-replica annealer.

Covers the engine's four core contracts:

* **bookkeeping** — the incrementally-maintained energies match
  ``evaluate_many`` after every sweep;
* **validity** — batched best energies can never beat the brute-force
  minimum, and reported spins always evaluate to the reported value;
* **reproducibility** — seeded runs are deterministic, and a sibling's
  result is independent of batch composition (the property the batch-aware
  cache memo relies on);
* **quality parity** — the vectorized engine matches the legacy scalar
  loop's mean best energy within noise on seeded power-law instances.

Plus the cache-layer integration (per-sibling hits, engine-tagged keys,
payload round-trips), the solver surfacing (fallback provenance, unified
sampling-cap caching), and the fingerprint-keyed distance-matrix memo.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.serial import SerialBackend
from repro.baselines.classical import c_min_many, solve_classically_many
from repro.cache.keys import anneal_key
from repro.cache.memo import (
    cached_anneal_many,
    cached_simulated_annealing,
    memoized_distance_matrix,
)
from repro.cache.store import SolveCache
from repro.core.partition import executed_subproblems, partition_problem
from repro.core.solver import FrozenQubitsSolver, SolverConfig
from repro.devices.coupling import CouplingMap
from repro.devices.ibm import get_backend
from repro.exceptions import HamiltonianError
from repro.graphs.generators import barabasi_albert_graph
from repro.ising.annealer import AnnealResult, simulated_annealing
from repro.ising.annealer_batched import AnnealStructure, anneal_many
from repro.ising.bruteforce import brute_force_minimum
from repro.ising.hamiltonian import IsingHamiltonian
from repro.planning.budget import ExecutionBudget
from repro.planning.pruning import rank_assignments


def _powerlaw(n: int, attachment: int, seed: int) -> IsingHamiltonian:
    graph = barabasi_albert_graph(n, attachment=attachment, seed=seed)
    return IsingHamiltonian.from_graph(
        graph, weights="random_pm1", seed=seed + 1
    )


def _sibling_cells(n: int = 12, m: int = 2, seed: int = 3):
    parts = partition_problem(
        _powerlaw(n, 2, seed), list(range(m)), prune_symmetric=False
    )
    return [sp.hamiltonian for sp in executed_subproblems(parts)]


class TestStructure:
    def test_color_classes_are_conflict_free(self):
        h = _powerlaw(40, 3, seed=9)
        structure = AnnealStructure.for_hamiltonian(h)
        quadratic = set(h.quadratic.keys())
        for block in structure.blocks:
            sites = set(int(s) for s in block.sites)
            for i in sites:
                for j in sites:
                    assert (min(i, j), max(i, j)) not in quadratic or i == j

    def test_every_site_in_exactly_one_block(self):
        h = _powerlaw(25, 2, seed=4)
        structure = AnnealStructure.for_hamiltonian(h)
        seen = np.concatenate([block.sites for block in structure.blocks])
        assert sorted(seen.tolist()) == list(range(25))

    def test_structure_memoized_across_siblings(self):
        cells = _sibling_cells()
        structures = {id(AnnealStructure.for_hamiltonian(h)) for h in cells}
        # Siblings share one coupling graph => one shared structure.
        assert len(structures) == 1

    def test_mismatched_support_rejected(self):
        h = _powerlaw(8, 1, seed=5)
        other = IsingHamiltonian(8, quadratic={(0, 7): 1.0, (1, 6): -1.0})
        structure = AnnealStructure.for_hamiltonian(h)
        with pytest.raises(HamiltonianError):
            structure.directed_weights([other])


class TestBookkeeping:
    def test_incremental_energy_matches_evaluate_many_every_sweep(self):
        cells = _sibling_cells(n=14, m=2, seed=7)
        checked = []

        def check(sweep, spins, energies):
            n, batch, replicas = spins.shape
            for b in range(batch):
                reference = cells[b].evaluate_many(spins[:, b, :].T)
                np.testing.assert_allclose(
                    reference, energies[b], rtol=0, atol=1e-9
                )
            checked.append(sweep)

        anneal_many(
            cells, num_sweeps=25, num_restarts=3,
            seeds=list(range(1, len(cells) + 1)), sweep_callback=check,
        )
        assert checked == list(range(25))

    def test_reported_spins_evaluate_to_reported_value(self):
        for seed in range(5):
            h = _powerlaw(20, 2, seed=seed)
            result = anneal_many(
                [h], num_sweeps=60, num_restarts=3, seeds=[seed]
            )[0]
            assert h.evaluate(result.spins) == pytest.approx(result.value)

    def test_batched_best_never_beats_brute_force(self):
        for seed in range(8):
            h = _powerlaw(10, 2, seed=seed)
            exact = brute_force_minimum(h).value
            result = anneal_many(
                [h], num_sweeps=150, num_restarts=4, seeds=[seed]
            )[0]
            assert result.value >= exact - 1e-9


class TestReproducibility:
    def test_seeded_runs_are_bit_identical(self):
        cells = _sibling_cells()
        seeds = list(range(len(cells)))
        first = anneal_many(cells, num_sweeps=40, num_restarts=2, seeds=seeds)
        second = anneal_many(cells, num_sweeps=40, num_restarts=2, seeds=seeds)
        assert first == second

    def test_result_independent_of_batch_composition(self):
        cells = _sibling_cells(n=13, m=2, seed=11)
        seeds = [21, 22, 23, 24]
        batched = anneal_many(cells, num_sweeps=35, num_restarts=3, seeds=seeds)
        solo = [
            anneal_many([h], num_sweeps=35, num_restarts=3, seeds=[s])[0]
            for h, s in zip(cells, seeds)
        ]
        assert batched == solo

    def test_scalar_facade_matches_batched_row(self):
        h = _powerlaw(15, 2, seed=13)
        assert (
            simulated_annealing(h, num_sweeps=30, num_restarts=2, seed=5)
            == anneal_many([h], num_sweeps=30, num_restarts=2, seeds=[5])[0]
        )

    def test_mixed_topology_batch_matches_solo(self):
        a = _powerlaw(9, 1, seed=1)
        b = _powerlaw(12, 2, seed=2)
        mixed = anneal_many([a, b, a], num_sweeps=20, num_restarts=2,
                            seeds=[4, 5, 6])
        assert mixed[0] == anneal_many([a], num_sweeps=20, num_restarts=2,
                                       seeds=[4])[0]
        assert mixed[1] == anneal_many([b], num_sweeps=20, num_restarts=2,
                                       seeds=[5])[0]
        assert mixed[2] == anneal_many([a], num_sweeps=20, num_restarts=2,
                                       seeds=[6])[0]

    def test_parent_seed_spawns_deterministically(self):
        cells = _sibling_cells()
        first = anneal_many(cells, num_sweeps=20, num_restarts=2, seed=9)
        second = anneal_many(cells, num_sweeps=20, num_restarts=2, seed=9)
        assert first == second

    def test_seed_and_seeds_mutually_exclusive(self):
        h = _powerlaw(8, 1, seed=3)
        with pytest.raises(HamiltonianError):
            anneal_many([h], seeds=[1], seed=2)

    def test_seeds_length_mismatch_rejected(self):
        h = _powerlaw(8, 1, seed=3)
        with pytest.raises(HamiltonianError):
            anneal_many([h, h], seeds=[1])


class TestValidationAndEdgeCases:
    def test_shared_validation_with_scalar_engine(self):
        h = _powerlaw(6, 1, seed=2)
        with pytest.raises(HamiltonianError):
            anneal_many([h], num_sweeps=0, seeds=[1])
        with pytest.raises(HamiltonianError):
            anneal_many([h], num_restarts=0, seeds=[1])
        with pytest.raises(HamiltonianError):
            anneal_many([h], initial_temperature=0.1, final_temperature=1.0,
                        seeds=[1])
        with pytest.raises(HamiltonianError):
            anneal_many([IsingHamiltonian(0)], seeds=[1])

    def test_empty_batch(self):
        assert anneal_many([]) == []

    def test_edge_free_hamiltonian(self):
        h = IsingHamiltonian(5, linear=[1.0, -2.0, 0.0, 0.5, -0.5], offset=2.0)
        result = anneal_many([h], num_sweeps=40, num_restarts=2, seeds=[1])[0]
        assert result.value == brute_force_minimum(h).value

    def test_legacy_engine_unchanged_for_seeded_calls(self):
        # A frozen reference from the pre-batched-engine scalar loop: the
        # legacy path must keep reproducing it flip-for-flip.
        h = IsingHamiltonian(
            4,
            linear=[0.5, 0.0, -1.0, 0.25],
            quadratic={(0, 1): 1.0, (1, 2): -1.0, (2, 3): 1.0, (0, 3): -1.0},
            offset=0.5,
        )
        result = simulated_annealing(
            h, num_sweeps=30, num_restarts=2, seed=42, vectorized=False
        )
        assert result.value == -5.25
        assert result.spins == (-1, 1, 1, -1)


class TestQualityParity:
    def test_mean_best_energy_within_noise_of_legacy(self):
        """Seeded power-law parity: same sweeps x replicas, both engines."""
        vector_bests = []
        scalar_bests = []
        for seed in range(6):
            h = _powerlaw(24, 2, seed=100 + seed)
            vector_bests.append(
                simulated_annealing(
                    h, num_sweeps=120, num_restarts=4, seed=seed
                ).value
            )
            scalar_bests.append(
                simulated_annealing(
                    h, num_sweeps=120, num_restarts=4, seed=seed,
                    vectorized=False,
                ).value
            )
        vector_mean = float(np.mean(vector_bests))
        scalar_mean = float(np.mean(scalar_bests))
        # Parity within noise: the batched engine may not be meaningfully
        # worse than the scalar loop at equal budget.
        tolerance = 0.05 * abs(scalar_mean) + 1e-9
        assert vector_mean <= scalar_mean + tolerance


class TestAnnealResultProvenance:
    def test_replica_fields_populated_on_both_engines(self):
        h = _powerlaw(10, 1, seed=6)
        for vectorized in (True, False):
            result = simulated_annealing(
                h, num_sweeps=25, num_restarts=3, seed=8, vectorized=vectorized
            )
            assert result.num_replicas == 3
            assert len(result.restart_values) == 3
            assert min(result.restart_values) == pytest.approx(result.value)

    def test_restart_stats_nan_safe(self):
        empty = AnnealResult(value=1.0, spins=(1,), num_sweeps=1, num_restarts=1)
        stats = empty.restart_stats
        assert all(np.isnan(v) for v in stats.values())
        mixed = AnnealResult(
            value=-2.0, spins=(1,), num_sweeps=1, num_restarts=3,
            num_replicas=3, restart_values=(-2.0, float("nan"), -1.0),
        )
        stats = mixed.restart_stats
        assert stats["min"] == -2.0
        assert stats["max"] == -1.0
        assert stats["mean"] == pytest.approx(-1.5)


class TestCacheIntegration:
    def test_engine_tag_separates_cache_keys(self):
        h = _powerlaw(8, 1, seed=4)
        scalar = anneal_key(h, 10, 2, 5.0, 0.01, 7)
        assert anneal_key(h, 10, 2, 5.0, 0.01, 7, engine="scalar") == scalar
        assert anneal_key(h, 10, 2, 5.0, 0.01, 7, engine="vectorized") != scalar

    def test_cached_anneal_many_answers_hits_individually(self):
        cells = _sibling_cells(n=12, m=3, seed=17)
        seeds = list(range(30, 30 + len(cells)))
        cache = SolveCache()
        cold = cached_anneal_many(
            cells, num_sweeps=25, num_restarts=2, seeds=seeds, cache=cache
        )
        stats = cache.stats_snapshot()["anneal"]
        assert stats["stores"] == len(cells)
        # Warm a strict subset: the memo must answer the hits and anneal
        # only the misses — bit-identically to the cold full batch.
        subset = cells[:2] + [cells[-1]]
        subset_seeds = seeds[:2] + [seeds[-1]]
        warm = cached_anneal_many(
            subset, num_sweeps=25, num_restarts=2, seeds=subset_seeds,
            cache=cache,
        )
        assert warm == [cold[0], cold[1], cold[-1]]
        stats = cache.stats_snapshot()["anneal"]
        assert stats["memory_hits"] == 3
        assert stats["stores"] == len(cells)

    def test_cached_anneal_many_mixed_hit_miss_bit_identical(self):
        cells = _sibling_cells(n=11, m=2, seed=19)
        seeds = [51, 52, 53, 54]
        uncached = anneal_many(cells, num_sweeps=20, num_restarts=2, seeds=seeds)
        cache = SolveCache()
        # Pre-warm only sibling 1: the other three anneal as a smaller
        # batch, which must not change their results.
        cached_anneal_many(
            [cells[1]], num_sweeps=20, num_restarts=2, seeds=[seeds[1]],
            cache=cache,
        )
        mixed = cached_anneal_many(
            cells, num_sweeps=20, num_restarts=2, seeds=seeds, cache=cache
        )
        assert mixed == uncached

    def test_cached_single_call_matches_batch_memo(self):
        h = _powerlaw(9, 1, seed=23)
        cache = SolveCache()
        single = cached_simulated_annealing(
            h, num_sweeps=15, num_restarts=2, seed=77, cache=cache
        )
        hit = cached_anneal_many(
            [h], num_sweeps=15, num_restarts=2, seeds=[77], cache=cache
        )[0]
        assert hit == single
        assert cache.stats_snapshot()["anneal"]["memory_hits"] == 1

    def test_disk_payload_round_trips_provenance(self, tmp_path):
        h = _powerlaw(9, 1, seed=27)
        disk = SolveCache(cache_dir=str(tmp_path))
        stored = cached_simulated_annealing(
            h, num_sweeps=12, num_restarts=3, seed=5, cache=disk
        )
        rehydrated = SolveCache(cache_dir=str(tmp_path))
        replay = cached_simulated_annealing(
            h, num_sweeps=12, num_restarts=3, seed=5, cache=rehydrated
        )
        assert replay == stored
        assert replay.num_replicas == 3
        assert replay.restart_values == stored.restart_values
        assert rehydrated.stats_snapshot()["anneal"]["disk_hits"] == 1

    def test_batch_memo_rejects_seed_length_mismatch(self):
        # Regression: the cached path must validate like the uncached one
        # instead of silently truncating the batch.
        h = _powerlaw(8, 1, seed=2)
        with pytest.raises(HamiltonianError):
            cached_anneal_many([h, h], seeds=[1], cache=SolveCache())

    def test_generator_seeds_bypass_batch_memo(self):
        h = _powerlaw(9, 1, seed=29)
        cache = SolveCache()
        cached_anneal_many(
            [h], num_sweeps=10, seeds=[np.random.default_rng(3)], cache=cache
        )
        assert "anneal" not in cache.stats_snapshot()


class TestSolverIntegration:
    def test_rank_assignments_vectorized_matches_probe_contract(self):
        parts = executed_subproblems(
            partition_problem(_powerlaw(14, 2, seed=31), [0, 1, 2])
        )
        ranks = rank_assignments(parts, seed=7)
        assert sorted(r.index for r in ranks) == sorted(sp.index for sp in parts)
        probes = [r.probe_value for r in ranks]
        assert probes == sorted(probes)
        for rank in ranks:
            assert rank.lower_bound <= rank.probe_value + 1e-9
        # Deterministic, and bit-identical to the per-cell engine calls.
        assert ranks == rank_assignments(parts, seed=7)

    def test_budget_fallback_carries_replica_provenance(self):
        problem = _powerlaw(10, 2, seed=37)
        solver = FrozenQubitsSolver(
            num_frozen=3,
            config=SolverConfig(grid_resolution=3, maxiter=4, shots=128),
            seed=41,
            budget=ExecutionBudget(max_circuits=1),
            warm_start=False,
        )
        result = solver.solve(problem)
        classical = [o for o in result.outcomes if o.source == "classical"]
        assert classical
        for outcome in classical:
            assert outcome.fallback is not None
            assert outcome.fallback.num_replicas == outcome.fallback.num_restarts
        provenance = result.fallback_provenance
        assert set(provenance) == {o.subproblem.index for o in classical}
        for record in provenance.values():
            assert record["num_replicas"] >= 1
            assert np.isfinite(record["mean"])

    def test_budgeted_solve_deterministic_and_cache_consistent(self):
        problem = _powerlaw(11, 2, seed=43)
        cache = SolveCache()

        def solve():
            return FrozenQubitsSolver(
                num_frozen=3,
                config=SolverConfig(grid_resolution=3, maxiter=4, shots=128),
                seed=47,
                budget=ExecutionBudget(max_circuits=1),
                warm_start=False,
                cache=cache,
            ).solve(problem)

        cold, warm = solve(), solve()
        assert cold.best_spins == warm.best_spins
        assert cold.best_value == warm.best_value
        assert [o.best_spins for o in cold.outcomes] == [
            o.best_spins for o in warm.outcomes
        ]
        # Probes + fallbacks answered from cache on the warm pass.
        assert cache.stats_snapshot()["anneal"]["memory_hits"] > 0

    def test_sampling_cap_fallback_cached_via_session_default(self):
        """Satellite regression: solver.py's over-the-cap fallback routes
        through cached_simulated_annealing like every other call site."""
        from repro.cache import set_default_cache

        problem = _powerlaw(24, 1, seed=53)
        config = SolverConfig(
            grid_resolution=3, maxiter=4, shots=64, max_sampled_qubits=8
        )
        cache = SolveCache()
        set_default_cache(cache)
        try:
            def solve():
                return FrozenQubitsSolver(
                    num_frozen=1, config=config, seed=59, cache=False
                ).solve(problem)

            cold = solve()
            assert cache.stats_snapshot()["anneal"]["stores"] > 0
            warm = solve()
            assert cache.stats_snapshot()["anneal"]["memory_hits"] > 0
            assert warm.best_spins == cold.best_spins
            assert warm.best_value == cold.best_value
        finally:
            set_default_cache(None)

    def test_sampling_cap_fallback_matches_across_backends(self):
        """The batched backend's one-call fallback pass must be
        bit-identical to the serial per-instance path."""
        from repro.backend.batched import BatchedStatevectorBackend

        problem = _powerlaw(22, 1, seed=61)
        config = SolverConfig(
            grid_resolution=3, maxiter=4, shots=64, max_sampled_qubits=8
        )

        def solve(backend):
            return FrozenQubitsSolver(
                num_frozen=1, config=config, seed=67
            ).solve(problem, backend=backend)

        serial = solve(SerialBackend())
        batched = solve(BatchedStatevectorBackend())
        assert serial.best_spins == batched.best_spins
        assert serial.best_value == batched.best_value
        assert [o.best_spins for o in serial.outcomes] == [
            o.best_spins for o in batched.outcomes
        ]


class TestClassicalBatchFacade:
    def test_solve_classically_many_matches_singles(self):
        hams = [_powerlaw(9, 1, seed=s) for s in (71, 72, 73)]
        batch = solve_classically_many(hams, method="anneal", seed=5)
        # Child seeds spawn in batch order; replay them one by one.
        from repro.utils.rng import spawn_seeds

        seeds = spawn_seeds(5, len(hams))
        singles = [
            solve_classically_many([h], method="anneal", seeds=[s])[0]
            for h, s in zip(hams, seeds)
        ]
        assert batch == singles

    def test_auto_dispatch_mixes_exact_and_anneal(self):
        small = _powerlaw(6, 1, seed=81)
        large = _powerlaw(25, 1, seed=82)
        results = solve_classically_many(
            [small, large], method="auto", seed=3, exact_threshold=10
        )
        assert results[0].method == "exact" and results[0].exact
        assert results[1].method == "anneal" and not results[1].exact

    def test_c_min_many_exact_below_threshold(self):
        hams = [_powerlaw(8, 1, seed=s) for s in (91, 92)]
        values = c_min_many(hams, exact_threshold=10)
        for h, value in zip(hams, values):
            assert value == brute_force_minimum(h).value

    def test_seeds_length_mismatch_rejected(self):
        from repro.exceptions import SolverError

        with pytest.raises(SolverError):
            solve_classically_many(
                [_powerlaw(6, 1, seed=1)], seeds=[1, 2]
            )


class TestDistanceMatrixMemo:
    def test_two_equal_maps_share_one_matrix(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]
        first = CouplingMap(4, edges)
        second = CouplingMap(4, edges)
        assert first.distance_matrix() is second.distance_matrix()

    def test_two_routes_on_same_device_share_one_matrix(self):
        """Satellite regression: route() twice on equal devices => one
        all-pairs BFS result, fingerprint-shared."""
        device = get_backend("montreal")
        rebuilt = CouplingMap(
            device.coupling.num_qubits, device.coupling.edges()
        )
        assert memoized_distance_matrix(device.coupling) is (
            memoized_distance_matrix(rebuilt)
        )

    def test_memoized_matrix_is_read_only_and_correct(self):
        coupling = CouplingMap(3, [(0, 1), (1, 2)])
        distances = coupling.distance_matrix()
        assert not distances.flags.writeable
        assert distances[0, 2] == 2
        assert distances[0, 0] == 0

    def test_distinct_topologies_get_distinct_matrices(self):
        a = CouplingMap(3, [(0, 1), (1, 2)])
        b = CouplingMap(3, [(0, 1), (1, 2), (0, 2)])
        assert a.distance_matrix() is not b.distance_matrix()
        assert b.distance_matrix()[0, 2] == 1
