"""Tests for the `python -m repro.experiments` figure-regeneration CLI."""

import os

from repro.experiments.__main__ import main


class TestCli:
    def test_single_figure_prints_table(self, capsys):
        assert main(["--only", "fig18"]) == 0
        out = capsys.readouterr().out
        assert "fig18_runtime" in out
        assert "Batched+Shared [IBMQ]" in out

    def test_csv_output(self, tmp_path, capsys):
        out_dir = str(tmp_path / "csv")
        assert main(["--only", "fig18", "--csv", out_dir]) == 0
        files = os.listdir(out_dir)
        assert files == ["fig18_runtime.csv"]
        with open(os.path.join(out_dir, files[0])) as handle:
            header = handle.readline().strip()
        assert header.startswith("execution_model")

    def test_unknown_prefix_runs_nothing(self, capsys):
        assert main(["--only", "nonexistent"]) == 0
        assert capsys.readouterr().out == ""

    def test_table3_included(self, capsys):
        assert main(["--only", "table3"]) == 0
        out = capsys.readouterr().out
        assert "CutQC" in out and "FrozenQubits" in out
