"""Tests for the `python -m repro.experiments` figure-regeneration CLI."""

import os

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_single_figure_prints_table(self, capsys):
        assert main(["--only", "fig18"]) == 0
        out = capsys.readouterr().out
        assert "fig18_runtime" in out
        assert "Batched+Shared [IBMQ]" in out

    def test_csv_output(self, tmp_path, capsys):
        out_dir = str(tmp_path / "csv")
        assert main(["--only", "fig18", "--csv", out_dir]) == 0
        files = os.listdir(out_dir)
        assert files == ["fig18_runtime.csv"]
        with open(os.path.join(out_dir, files[0])) as handle:
            header = handle.readline().strip()
        assert header.startswith("execution_model")

    def test_unknown_prefix_runs_nothing(self, capsys):
        assert main(["--only", "nonexistent"]) == 0
        assert capsys.readouterr().out == ""

    def test_table3_included(self, capsys):
        assert main(["--only", "table3"]) == 0
        out = capsys.readouterr().out
        assert "CutQC" in out and "FrozenQubits" in out

    def test_planning_flags_run_and_reset_defaults(self, capsys):
        from repro.planning import get_default_planning

        assert main(["--only", "fig18", "--budget", "2", "--warm-start"]) == 0
        assert "fig18_runtime" in capsys.readouterr().out
        # The CLI installs session planning defaults for the run only.
        defaults = get_default_planning()
        assert defaults.budget is None and not defaults.warm_start

    def test_cli_preserves_caller_installed_defaults(self, capsys):
        from repro.planning import (
            PlanningDefaults,
            get_default_planning,
            set_default_planning,
        )

        mine = PlanningDefaults(warm_start=True)
        set_default_planning(mine)
        try:
            assert main(["--only", "fig18"]) == 0
            assert get_default_planning() is mine  # untouched: no flags
            assert main(["--only", "fig18", "--budget", "3"]) == 0
            assert get_default_planning() is mine  # restored after flags
        finally:
            set_default_planning(None)
        capsys.readouterr()

    def test_budget_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["--only", "fig18", "--budget", "0"])


class TestRecursiveCli:
    def test_small_recursive_solve_prints_summary(self, capsys):
        from repro.recursive.__main__ import main as recursive_main

        assert recursive_main([
            "--nodes", "60", "--seed", "3", "--max-circuits", "8",
            "--shots", "128", "--max-leaf-qubits", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "instance: 60 nodes" in out
        assert "best value:" in out
        assert "budget cap 8" in out

    def test_show_tree_renders_plan(self, capsys):
        from repro.recursive.__main__ import main as recursive_main

        assert recursive_main([
            "--nodes", "40", "--seed", "3", "--shots", "128",
            "--max-leaf-qubits", "8", "--show-tree",
        ]) == 0
        out = capsys.readouterr().out
        assert "@r" in out  # the tree rendering
        assert "tree:" in out

    def test_invalid_flags_rejected(self):
        from repro.recursive.__main__ import main as recursive_main

        with pytest.raises(SystemExit):
            recursive_main(["--nodes", "1"])
        with pytest.raises(SystemExit):
            recursive_main(["--max-circuits", "0"])
