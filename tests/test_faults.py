"""Tests for the fault-tolerant execution layer.

The load-bearing guarantees: a retry re-runs the same spec (same child
seed), so a recovered run is bit-identical to one that never failed; a
dead worker pool is respawned with completed results preserved; jobs that
exhaust their retries degrade to classical coverage with honest
provenance instead of aborting the solve; and — with no policy installed
— today's fail-fast behaviour is pinned bit-identically (failures just
arrive wrapped as JobError/BackendError with the cause chained).

Every fault here is injected deterministically through
:mod:`repro.faults`; the magic fault seeds were chosen (and are pinned by
the hash construction) so each probabilistic plan clears within its retry
budget.
"""

import math
import os
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import (
    BatchedStatevectorBackend,
    FaultPolicy,
    JobSpec,
    ProcessPoolBackend,
    SerialBackend,
    classify_error,
    execute_job,
    execute_job_with_policy,
    execute_jobs_serially,
)
from repro.cache import SolveCache
from repro.core import FrozenQubitsSolver, SolverConfig
from repro.devices import get_backend
from repro.exceptions import (
    BackendError,
    GraphError,
    JobError,
    JobTimeout,
    SolverError,
)
from repro.faults import (
    FAULTS_ENV_VAR,
    FaultInjection,
    InjectedFault,
    active_fault_injection,
    deterministic_uniform,
    injection_from_env,
    tear_artifact,
)
from repro.graphs.generators import barabasi_albert_graph
from repro.ising.hamiltonian import IsingHamiltonian, random_pm1_hamiltonian
from repro.recursive import RecursiveConfig, solve_recursive

FAST = SolverConfig(shots=512, grid_resolution=6, maxiter=20)


def _problem(num_qubits=8, seed=42):
    graph = barabasi_albert_graph(num_qubits, attachment=1, seed=seed)
    return IsingHamiltonian.from_graph(
        graph, weights="random_pm1", seed=seed + 1
    )


def _spec(job_id="job", seed=7, config=FAST, **kwargs):
    return JobSpec(
        job_id=job_id,
        hamiltonian=_problem(6, seed=11),
        config=config,
        seed=seed,
        **kwargs,
    )


def _ev(value):
    # NaN != NaN would wreck tuple equality for failed cells; normalize
    # to a sentinel so two runs with the same NaN pattern compare equal.
    if isinstance(value, float) and math.isnan(value):
        return "nan"
    return value


def _signature(result):
    """Every scientific field, bitwise (see benchmarks/bench_cache.py)."""
    return (
        tuple(result.frozen_qubits),
        result.best_spins,
        result.best_value,
        _ev(result.ev_ideal),
        _ev(result.ev_noisy),
        tuple(
            (
                o.subproblem.index,
                o.source,
                o.best_spins,
                o.best_value,
                _ev(o.ev_ideal),
                _ev(o.ev_noisy),
                tuple(sorted(o.decoded_counts.items()))
                if o.decoded_counts is not None
                else None,
            )
            for o in result.outcomes
        ),
    )


# ----------------------------------------------------------------------
# The deterministic fault injector
# ----------------------------------------------------------------------
class TestDeterministicUniform:
    def test_pure_function_of_arguments(self):
        assert deterministic_uniform(3, "sp1", 0) == deterministic_uniform(
            3, "sp1", 0
        )
        assert deterministic_uniform(3, "sp1", 0) != deterministic_uniform(
            3, "sp1", 1
        )
        assert deterministic_uniform(3, "sp1", 0) != deterministic_uniform(
            4, "sp1", 0
        )

    @given(
        seed=st.integers(0, 2**31),
        job_id=st.text(max_size=8),
        attempt=st.integers(0, 5),
    )
    @settings(max_examples=50, deadline=None)
    def test_always_in_unit_interval(self, seed, job_id, attempt):
        draw = deterministic_uniform(seed, job_id, attempt)
        assert 0.0 <= draw < 1.0


class TestFaultInjectionPlan:
    def test_dict_and_pair_forms_are_equal_and_hashable(self):
        a = FaultInjection(fail_jobs={"a": 1, "b": None})
        b = FaultInjection(fail_jobs=(("b", None), ("a", 1)))
        assert a == b
        assert hash(a) == hash(b)

    def test_pickle_roundtrip(self):
        plan = FaultInjection(
            seed=5,
            fail_jobs={"a": 2},
            fail_probability=0.1,
            kill_worker_jobs={"b": 0},
            slow_jobs={"c": 0.5},
            cache_write_error_kinds=("params",),
        )
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_json_roundtrip(self):
        plan = FaultInjection(
            seed=5, fail_jobs={"a": 2}, torn_cache_kinds=("anneal",)
        )
        assert FaultInjection.from_json(plan.to_json()) == plan

    def test_from_json_rejects_junk(self):
        with pytest.raises(ValueError):
            FaultInjection.from_json("[1, 2]")
        with pytest.raises(ValueError):
            FaultInjection.from_json('{"no_such_field": 1}')

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            FaultInjection(fail_probability=1.5)

    def test_fail_jobs_transient_for_k_attempts(self):
        plan = FaultInjection(fail_jobs={"a": 2})
        for attempt in (0, 1):
            with pytest.raises(InjectedFault) as excinfo:
                plan.fire("a", attempt)
            assert excinfo.value.transient
        plan.fire("a", 2)  # attempt 2 passes
        plan.fire("other", 0)  # unnamed jobs never fire

    def test_fail_jobs_none_is_permanent_every_attempt(self):
        plan = FaultInjection(fail_jobs={"a": None})
        for attempt in (0, 1, 7):
            with pytest.raises(InjectedFault) as excinfo:
                plan.fire("a", attempt)
            assert not excinfo.value.transient

    def test_probabilistic_fault_matches_the_draw(self):
        plan = FaultInjection(seed=3, fail_probability=0.5)
        for job_id in ("sp0", "sp1", "sp2", "sp3"):
            for attempt in range(3):
                should_fail = deterministic_uniform(3, job_id, attempt) < 0.5
                if should_fail:
                    with pytest.raises(InjectedFault):
                        plan.fire(job_id, attempt)
                else:
                    plan.fire(job_id, attempt)

    def test_kill_is_a_noop_in_the_main_process(self):
        # os._exit would end the interpreter; outside a pool worker the
        # kill degrades to nothing.
        FaultInjection(kill_worker_jobs={"a": 0}).fire("a", 0)

    def test_injected_fault_pickles_with_flag(self):
        fault = InjectedFault("boom", transient=False)
        clone = pickle.loads(pickle.dumps(fault))
        assert not clone.transient
        assert str(clone) == "boom"

    def test_env_hook(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        assert injection_from_env() is None
        plan = FaultInjection(fail_jobs={"a": 1})
        monkeypatch.setenv(FAULTS_ENV_VAR, plan.to_json())
        assert injection_from_env() == plan
        # memoized: same raw string, same object
        assert injection_from_env() is injection_from_env()
        # an explicit config plan wins over the environment
        override = FaultInjection(fail_probability=0.5)
        config = SolverConfig(fault_injection=override)
        assert active_fault_injection(config) == override
        assert active_fault_injection(SolverConfig()) == plan
        assert active_fault_injection(None) == plan


# ----------------------------------------------------------------------
# The policy
# ----------------------------------------------------------------------
class TestFaultPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"job_timeout_seconds": 0.0},
            {"backoff_seconds": -0.1},
            {"failure_budget": -1},
            {"failure_budget": 1.5},
            {"failure_budget": True},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(BackendError):
            FaultPolicy(**kwargs)

    def test_max_attempts(self):
        assert FaultPolicy(max_retries=0).max_attempts == 1
        assert FaultPolicy(max_retries=3).max_attempts == 4

    def test_classifier_over_the_taxonomy(self):
        assert classify_error(GraphError("bad graph")) == "permanent"
        assert classify_error(SolverError("bad solve")) == "permanent"
        assert classify_error(OSError("flaky disk")) == "transient"
        assert classify_error(MemoryError()) == "transient"
        # explicit transient attribute wins over the taxonomy
        assert classify_error(JobTimeout("slow")) == "transient"
        assert classify_error(InjectedFault("x", transient=True)) == "transient"
        assert (
            classify_error(InjectedFault("x", transient=False)) == "permanent"
        )

    def test_backoff_is_deterministic_and_exponential(self):
        policy = FaultPolicy(backoff_seconds=0.1, backoff_seed=9)
        first = policy.backoff_for("sp1", 0)
        assert first == policy.backoff_for("sp1", 0)
        assert 0.05 <= first < 0.15
        assert 0.1 <= policy.backoff_for("sp1", 1) < 0.3
        # zero base means no sleep at all
        assert FaultPolicy().backoff_for("sp1", 3) == 0.0

    def test_allowed_failures(self):
        assert FaultPolicy().allowed_failures(16) is None
        assert FaultPolicy(failure_budget=3).allowed_failures(16) == 3
        assert FaultPolicy(failure_budget=0.25).allowed_failures(16) == 4
        assert FaultPolicy(failure_budget=0.0).allowed_failures(16) == 0


# ----------------------------------------------------------------------
# Per-job retry semantics
# ----------------------------------------------------------------------
class TestExecuteJobWithPolicy:
    def test_transient_recovery_is_bit_identical(self):
        clean = execute_job(_spec())
        faulty = SolverConfig(
            shots=FAST.shots,
            grid_resolution=FAST.grid_resolution,
            maxiter=FAST.maxiter,
            fault_injection=FaultInjection(fail_jobs={"job": 2}),
        )
        retried = execute_job_with_policy(
            _spec(config=faulty), FaultPolicy(max_retries=2)
        )
        assert not retried.failed
        assert retried.attempts == 3
        assert len(retried.attempt_seconds) == 3
        assert retried.elapsed_seconds == pytest.approx(
            sum(retried.attempt_seconds)
        )
        assert retried.run.best_spins == clean.run.best_spins
        assert retried.run.best_value == clean.run.best_value
        assert retried.run.ev_ideal == clean.run.ev_ideal

    def test_permanent_error_fails_without_retrying(self):
        faulty = SolverConfig(
            fault_injection=FaultInjection(fail_jobs={"job": None})
        )
        result = execute_job_with_policy(
            _spec(config=faulty), FaultPolicy(max_retries=5)
        )
        assert result.failed
        assert result.run is None
        assert result.attempts == 1
        assert isinstance(result.error, JobError)
        assert result.error.job_id == "job"
        assert isinstance(result.error.__cause__, InjectedFault)

    def test_transient_exhaustion_records_every_attempt(self):
        faulty = SolverConfig(
            fault_injection=FaultInjection(fail_jobs={"job": 99})
        )
        result = execute_job_with_policy(
            _spec(config=faulty), FaultPolicy(max_retries=2)
        )
        assert result.failed
        assert result.attempts == 3
        assert len(result.attempt_seconds) == 3
        assert result.error.attempts == 3

    def test_slow_job_trips_the_timeout_then_recovers(self):
        clean = execute_job(_spec())
        faulty = SolverConfig(
            shots=FAST.shots,
            grid_resolution=FAST.grid_resolution,
            maxiter=FAST.maxiter,
            fault_injection=FaultInjection(slow_jobs={"job": 0.3}),
        )
        policy = FaultPolicy(max_retries=1, job_timeout_seconds=0.15)
        result = execute_job_with_policy(_spec(config=faulty), policy)
        assert not result.failed
        assert result.attempts == 2
        assert result.attempt_seconds[0] > 0.15
        assert result.run.best_spins == clean.run.best_spins

    def test_timeout_exhaustion_fails_with_job_timeout(self):
        faulty = SolverConfig(
            shots=FAST.shots,
            grid_resolution=FAST.grid_resolution,
            maxiter=FAST.maxiter,
            fault_injection=FaultInjection(slow_jobs={"job": 0.3}),
        )
        policy = FaultPolicy(max_retries=0, job_timeout_seconds=0.15)
        result = execute_job_with_policy(_spec(config=faulty), policy)
        assert result.failed
        assert isinstance(result.error.__cause__, JobTimeout)


class TestSerialFailFast:
    def test_exceptions_arrive_as_job_error_with_cause(self):
        faulty = SolverConfig(
            fault_injection=FaultInjection(fail_jobs={"bad": None})
        )
        jobs = [_spec("good", seed=3), _spec("bad", seed=4, config=faulty)]
        with pytest.raises(JobError) as excinfo:
            execute_jobs_serially(jobs)
        assert excinfo.value.job_id == "bad"
        assert isinstance(excinfo.value.__cause__, InjectedFault)


class TestDependencyDegradation:
    def test_failed_warm_start_source_degrades_dependent_to_fresh(self):
        faulty = SolverConfig(
            shots=FAST.shots,
            grid_resolution=FAST.grid_resolution,
            maxiter=FAST.maxiter,
            fault_injection=FaultInjection(fail_jobs={"source": None}),
        )
        jobs = [
            _spec("source", seed=3, config=faulty),
            _spec("dependent", seed=4, config=faulty, warm_start_from="source"),
        ]
        results = execute_jobs_serially(jobs, policy=FaultPolicy(max_retries=1))
        assert results[0].failed
        assert not results[1].failed
        # The dependent trained fresh — exactly what it does standalone.
        standalone = execute_job(_spec("dependent", seed=4))
        assert results[1].run.best_spins == standalone.run.best_spins
        assert results[1].run.best_value == standalone.run.best_value
        assert (
            results[1].run.optimization.gammas
            == standalone.run.optimization.gammas
        )

    def test_failed_params_from_source_degrades_dependent_to_fresh(self):
        faulty = SolverConfig(
            shots=FAST.shots,
            grid_resolution=FAST.grid_resolution,
            maxiter=FAST.maxiter,
            fault_injection=FaultInjection(fail_jobs={"source": None}),
        )
        jobs = [
            _spec("source", seed=3, config=faulty),
            _spec("dependent", seed=4, config=faulty, params_from="source"),
        ]
        results = execute_jobs_serially(jobs, policy=FaultPolicy(max_retries=0))
        assert results[0].failed
        assert not results[1].failed
        standalone = execute_job(_spec("dependent", seed=4))
        assert results[1].run.best_value == standalone.run.best_value

    def test_mixed_level_with_surviving_source_still_injects(self):
        # One source fails, one succeeds: the surviving source's dependent
        # must still adopt its parameters (params_by_id survives failures).
        faulty = SolverConfig(
            shots=FAST.shots,
            grid_resolution=FAST.grid_resolution,
            maxiter=FAST.maxiter,
            fault_injection=FaultInjection(fail_jobs={"dead": None}),
        )
        jobs = [
            _spec("dead", seed=3, config=faulty),
            _spec("alive", seed=4, config=faulty),
            _spec("leans-on-dead", seed=5, config=faulty, params_from="dead"),
            _spec("leans-on-alive", seed=6, config=faulty, params_from="alive"),
        ]
        results = execute_jobs_serially(jobs, policy=FaultPolicy(max_retries=0))
        assert [r.failed for r in results] == [True, False, False, False]
        assert (
            results[3].run.optimization.gammas
            == results[1].run.optimization.gammas
        )


class TestFailureBudget:
    def test_zero_budget_aborts_on_first_terminal_failure(self):
        faulty = SolverConfig(
            fault_injection=FaultInjection(fail_jobs={"bad": None})
        )
        jobs = [_spec("bad", seed=3, config=faulty), _spec("good", seed=4)]
        with pytest.raises(BackendError):
            execute_jobs_serially(
                jobs,
                policy=FaultPolicy(max_retries=0, failure_budget=0),
            )

    def test_budget_allows_up_to_the_cap(self):
        faulty = SolverConfig(
            shots=FAST.shots,
            grid_resolution=FAST.grid_resolution,
            maxiter=FAST.maxiter,
            fault_injection=FaultInjection(fail_jobs={"bad": None}),
        )
        jobs = [_spec("bad", seed=3, config=faulty), _spec("good", seed=4)]
        results = execute_jobs_serially(
            jobs, policy=FaultPolicy(max_retries=0, failure_budget=1)
        )
        assert results[0].failed and not results[1].failed


# ----------------------------------------------------------------------
# Solver-level degradation
# ----------------------------------------------------------------------
class TestSolverDegradation:
    def test_policy_without_faults_pins_default_behaviour(self):
        problem = _problem()
        base = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=13).solve(
            problem, backend=SerialBackend()
        )
        hardened = FrozenQubitsSolver(
            num_frozen=2, config=FAST, seed=13
        ).solve(problem, backend=SerialBackend(fault_policy=FaultPolicy()))
        assert _signature(base) == _signature(hardened)
        assert hardened.num_failed_jobs == 0
        assert hardened.num_job_retries == 0

    def test_permanent_failure_is_covered_classically(self):
        problem = _problem()
        config = SolverConfig(
            shots=FAST.shots,
            grid_resolution=FAST.grid_resolution,
            maxiter=FAST.maxiter,
            fault_injection=FaultInjection(fail_jobs={"sp1": None}),
        )
        result = FrozenQubitsSolver(
            num_frozen=2, config=config, seed=13
        ).solve(
            problem, backend=SerialBackend(fault_policy=FaultPolicy())
        )
        assert result.num_failed_jobs == 1
        failed = [o for o in result.outcomes if o.source == "failed"]
        assert len(failed) == 1
        outcome = failed[0]
        # Covered: a valid assignment with the parent cost, NaN EVs.
        assert problem.evaluate(outcome.best_spins) == outcome.best_value
        assert math.isnan(outcome.ev_ideal)
        assert outcome.fallback is not None
        assert isinstance(outcome.error, JobError)
        # Accounting: one circuit was never executed.
        base = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=13).solve(
            problem
        )
        assert (
            result.num_circuits_executed == base.num_circuits_executed - 1
        )
        provenance = result.failure_provenance
        assert list(provenance) == [outcome.subproblem.index]
        assert provenance[outcome.subproblem.index]["covered_value"] == (
            outcome.best_value
        )
        # The full state-space is still partitioned.
        assert len(result.outcomes) == len(base.outcomes)

    def test_transient_recovery_is_bit_identical_to_fault_free(self):
        problem = _problem()
        base = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=13).solve(
            problem, backend=SerialBackend()
        )
        config = SolverConfig(
            shots=FAST.shots,
            grid_resolution=FAST.grid_resolution,
            maxiter=FAST.maxiter,
            fault_injection=FaultInjection(fail_jobs={"sp0": 2, "sp1": 1}),
        )
        recovered = FrozenQubitsSolver(
            num_frozen=2, config=config, seed=13
        ).solve(
            problem,
            backend=SerialBackend(fault_policy=FaultPolicy(max_retries=2)),
        )
        assert _signature(base) == _signature(recovered)
        assert recovered.num_failed_jobs == 0
        assert recovered.num_job_retries == 3

    @given(fault_seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_property_recovered_runs_pin_the_fault_free_run(self, fault_seed):
        """(seed, policy, plan) -> bit-identical whenever retries succeed."""
        problem = _problem(6, seed=17)
        base = FrozenQubitsSolver(num_frozen=1, config=FAST, seed=5).solve(
            problem, backend=SerialBackend()
        )
        config = SolverConfig(
            shots=FAST.shots,
            grid_resolution=FAST.grid_resolution,
            maxiter=FAST.maxiter,
            fault_injection=FaultInjection(
                seed=fault_seed, fail_probability=0.3
            ),
        )
        # A big retry budget makes exhaustion astronomically unlikely
        # (p = 0.3^8), so every draw pattern must reconverge bitwise.
        result = FrozenQubitsSolver(
            num_frozen=1, config=config, seed=5
        ).solve(
            problem,
            backend=SerialBackend(fault_policy=FaultPolicy(max_retries=7)),
        )
        assert result.num_failed_jobs == 0
        assert _signature(base) == _signature(result)


# ----------------------------------------------------------------------
# Process-pool crash recovery
# ----------------------------------------------------------------------
class TestProcessPoolResilience:
    def test_killed_worker_recovers_bit_identically(self):
        problem = _problem()
        base = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=13).solve(
            problem, backend=SerialBackend()
        )
        config = SolverConfig(
            shots=FAST.shots,
            grid_resolution=FAST.grid_resolution,
            maxiter=FAST.maxiter,
            fault_injection=FaultInjection(kill_worker_jobs={"sp0": 0}),
        )
        recovered = FrozenQubitsSolver(
            num_frozen=2, config=config, seed=13
        ).solve(
            problem,
            backend=ProcessPoolBackend(
                max_workers=2, fault_policy=FaultPolicy(max_retries=2)
            ),
        )
        assert _signature(base) == _signature(recovered)
        assert recovered.num_failed_jobs == 0
        # At least the killed job was charged a crash retry.
        assert recovered.num_job_retries >= 1

    def test_dead_pool_without_policy_raises_backend_error(self):
        problem = _problem()
        config = SolverConfig(
            shots=FAST.shots,
            grid_resolution=FAST.grid_resolution,
            maxiter=FAST.maxiter,
            fault_injection=FaultInjection(kill_worker_jobs={"sp0": 0}),
        )
        solver = FrozenQubitsSolver(num_frozen=2, config=config, seed=13)
        with pytest.raises(BackendError):
            solver.solve(problem, backend=ProcessPoolBackend(max_workers=2))

    def test_worker_exception_without_policy_names_the_job(self):
        problem = _problem()
        config = SolverConfig(
            shots=FAST.shots,
            grid_resolution=FAST.grid_resolution,
            maxiter=FAST.maxiter,
            fault_injection=FaultInjection(fail_jobs={"sp1": None}),
        )
        solver = FrozenQubitsSolver(num_frozen=2, config=config, seed=13)
        with pytest.raises(JobError) as excinfo:
            solver.solve(problem, backend=ProcessPoolBackend(max_workers=2))
        assert excinfo.value.job_id == "sp1"

    def test_pool_permanent_failure_degrades_like_serial(self):
        problem = _problem()
        config = SolverConfig(
            shots=FAST.shots,
            grid_resolution=FAST.grid_resolution,
            maxiter=FAST.maxiter,
            fault_injection=FaultInjection(fail_jobs={"sp1": None}),
        )
        serial = FrozenQubitsSolver(
            num_frozen=2, config=config, seed=13
        ).solve(problem, backend=SerialBackend(fault_policy=FaultPolicy()))
        pooled = FrozenQubitsSolver(
            num_frozen=2, config=config, seed=13
        ).solve(
            problem,
            backend=ProcessPoolBackend(
                max_workers=2, fault_policy=FaultPolicy()
            ),
        )
        assert _signature(serial) == _signature(pooled)
        assert pooled.num_failed_jobs == 1


# ----------------------------------------------------------------------
# Batched backend containment
# ----------------------------------------------------------------------
class TestBatchedResilience:
    def test_transient_recovery_matches_fault_free_batched(self):
        problem = _problem()
        base = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=13).solve(
            problem, backend=BatchedStatevectorBackend()
        )
        config = SolverConfig(
            shots=FAST.shots,
            grid_resolution=FAST.grid_resolution,
            maxiter=FAST.maxiter,
            fault_injection=FaultInjection(fail_jobs={"sp0": 1}),
        )
        recovered = FrozenQubitsSolver(
            num_frozen=2, config=config, seed=13
        ).solve(
            problem,
            backend=BatchedStatevectorBackend(
                fault_policy=FaultPolicy(max_retries=1)
            ),
        )
        assert _signature(base) == _signature(recovered)
        assert recovered.num_job_retries == 1

    def test_permanent_failure_drops_out_of_the_stacked_passes(self):
        problem = _problem()
        config = SolverConfig(
            shots=FAST.shots,
            grid_resolution=FAST.grid_resolution,
            maxiter=FAST.maxiter,
            fault_injection=FaultInjection(fail_jobs={"sp0": None}),
        )
        result = FrozenQubitsSolver(
            num_frozen=2, config=config, seed=13
        ).solve(
            problem,
            backend=BatchedStatevectorBackend(fault_policy=FaultPolicy()),
        )
        assert result.num_failed_jobs == 1
        assert [o.source for o in result.outcomes].count("failed") == 1

    def test_fail_fast_wraps_as_job_error(self):
        problem = _problem()
        config = SolverConfig(
            shots=FAST.shots,
            grid_resolution=FAST.grid_resolution,
            maxiter=FAST.maxiter,
            fault_injection=FaultInjection(fail_jobs={"sp1": None}),
        )
        solver = FrozenQubitsSolver(num_frozen=2, config=config, seed=13)
        with pytest.raises(JobError) as excinfo:
            solver.solve(problem, backend=BatchedStatevectorBackend())
        assert excinfo.value.job_id == "sp1"


# ----------------------------------------------------------------------
# Cache disk-write degradation
# ----------------------------------------------------------------------
class TestCacheWriteDegradation:
    def test_injected_write_error_degrades_to_memory_only(self, tmp_path):
        cache = SolveCache(
            cache_dir=str(tmp_path),
            fault_injection=FaultInjection(cache_write_error_kinds=("*",)),
        )
        with pytest.warns(RuntimeWarning, match="memory-only"):
            cache.put("params", "k1", (1.0,), payload={"v": [1.0]})
        # The value is served from memory; nothing reached the disk.
        assert cache.get("params", "k1") == (1.0,)
        assert not any(tmp_path.rglob("*.json"))
        stats = cache.stats_snapshot()
        assert stats["params"]["write_error"] == 1
        # Later writes are skipped silently (counted, no second warning).
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            cache.put("anneal", "k2", (2.0,), payload={"v": [2.0]})
        assert cache.stats_snapshot()["anneal"]["write_error"] == 1
        assert cache.get("anneal", "k2") == (2.0,)

    def test_real_os_error_degrades_and_cleans_up(self, tmp_path, monkeypatch):
        cache = SolveCache(cache_dir=str(tmp_path))

        def deny(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "replace", deny)
        with pytest.warns(RuntimeWarning):
            cache.put("params", "k1", (1.0,), payload={"v": [1.0]})
        monkeypatch.undo()
        assert cache.get("params", "k1") == (1.0,)
        assert cache.stats_snapshot()["params"]["write_error"] == 1
        # The half-written temp file was unlinked, not abandoned.
        assert not any(tmp_path.rglob("*.tmp"))

    def test_torn_write_reads_back_as_clean_corrupt_miss(self, tmp_path):
        torn = SolveCache(
            cache_dir=str(tmp_path),
            fault_injection=FaultInjection(torn_cache_kinds=("params",)),
        )
        torn.put("params", "deadbeef", (1.0,), payload={"v": [1.0]})
        # A fresh cache over the same directory must treat the torn
        # artifact as corruption: miss, tally, unlink.
        fresh = SolveCache(cache_dir=str(tmp_path))
        assert fresh.get("params", "deadbeef", rebuild=lambda p: p) is None
        stats = fresh.stats_snapshot()
        assert stats["params"]["corrupt"] == 1
        assert not any(tmp_path.rglob("deadbeef*"))
        # Healed: the next read is a plain miss, not another corruption.
        assert fresh.get("params", "deadbeef", rebuild=lambda p: p) is None
        assert fresh.stats_snapshot()["params"]["corrupt"] == 1

    def test_tear_artifact_helper(self, tmp_path):
        cache = SolveCache(cache_dir=str(tmp_path))
        cache.put("anneal", "cafe", (1.0,), payload={"v": [1.0]})
        path = tear_artifact(cache, "anneal", "cafe")
        assert path.endswith(".json")
        fresh = SolveCache(cache_dir=str(tmp_path))
        assert fresh.get("anneal", "cafe", rebuild=lambda p: p) is None
        assert fresh.stats_snapshot()["anneal"]["corrupt"] == 1


# ----------------------------------------------------------------------
# Chaos acceptance: the ISSUE's end-to-end scenarios
# ----------------------------------------------------------------------
class TestChaosAcceptance:
    """20% transient faults + a worker kill (+ a permanent cell) on the
    16-sibling device sweep, and the 200-node recursive solve.

    Fault seeds are pinned to values where every probabilistic fault
    clears within the retry budget (the draws are cryptographic hashes of
    (seed, job_id, attempt), so they can never drift).
    """

    def _sweep(self, backend, fault_injection=None):
        problem = _problem(12, seed=7)
        config = SolverConfig(
            shots=512,
            grid_resolution=6,
            maxiter=20,
            fault_injection=fault_injection,
        )
        solver = FrozenQubitsSolver(
            num_frozen=4, prune_symmetric=False, config=config, seed=13
        )
        return solver.solve(
            problem, device=get_backend("montreal"), backend=backend
        )

    def test_device_sweep_recovers_bit_identically(self):
        base = self._sweep(SerialBackend())
        assert base.num_circuits_executed == 16
        chaos = FaultInjection(
            seed=1,  # all 16 jobs clear p=0.2 within 3 attempts,
            # even with one attempt consumed by the pool crash
            fail_probability=0.2,
            kill_worker_jobs={"sp3": 0},
        )
        result = self._sweep(
            ProcessPoolBackend(
                max_workers=2, fault_policy=FaultPolicy(max_retries=2)
            ),
            fault_injection=chaos,
        )
        assert result.num_failed_jobs == 0
        assert result.num_job_retries > 0
        assert _signature(base) == _signature(result)

    def test_device_sweep_with_permanent_cell_keeps_full_coverage(self):
        chaos = FaultInjection(
            seed=1,
            fail_probability=0.2,
            kill_worker_jobs={"sp3": 0},
            fail_jobs={"sp5": None},
        )
        result = self._sweep(
            ProcessPoolBackend(
                max_workers=2, fault_policy=FaultPolicy(max_retries=2)
            ),
            fault_injection=chaos,
        )
        assert result.num_failed_jobs == 1
        assert result.num_circuits_executed == 15
        # Full partition coverage: every cell reports a valid assignment,
        # and only the permanently-failed cell carries NaN expectations.
        problem = _problem(12, seed=7)
        nan_cells = []
        for outcome in result.outcomes:
            assert problem.evaluate(outcome.best_spins) == outcome.best_value
            if math.isnan(outcome.ev_ideal):
                nan_cells.append(outcome)
        assert len(nan_cells) == 1
        assert nan_cells[0].source == "failed"
        provenance = result.failure_provenance
        assert len(provenance) == 1
        (record,) = provenance.values()
        # The permanent fault ends the job the moment it fires, but the
        # pool crash may have charged one crash attempt first.
        assert record["attempts"] <= 2
        assert "sp5" in record["error"]

    def test_recursive_200_node_solve_recovers_bit_identically(self):
        graph = barabasi_albert_graph(200, attachment=1, seed=13)
        h = random_pm1_hamiltonian(graph, seed=13)
        cfg = SolverConfig(grid_resolution=6, maxiter=20, shots=512)
        rc = RecursiveConfig(max_leaf_qubits=10)
        base = solve_recursive(
            h,
            config=cfg,
            recursive_config=rc,
            seed=13,
            backend=SerialBackend(),
        )
        chaos_cfg = SolverConfig(
            grid_resolution=6,
            maxiter=20,
            shots=512,
            fault_injection=FaultInjection(seed=0, fail_probability=0.2),
        )
        result = solve_recursive(
            h,
            config=chaos_cfg,
            recursive_config=rc,
            seed=13,
            backend=SerialBackend(fault_policy=FaultPolicy(max_retries=2)),
        )
        assert result.num_failed_jobs == 0
        assert result.num_job_retries > 0
        assert result.best_spins == base.best_spins
        assert result.best_value == base.best_value
        assert result.ev_ideal == base.ev_ideal
        assert result.failure_provenance == {}

    def test_recursive_leaf_failure_composes_honestly(self):
        graph = barabasi_albert_graph(60, attachment=1, seed=21)
        h = random_pm1_hamiltonian(graph, seed=21)
        cfg = SolverConfig(grid_resolution=6, maxiter=20, shots=512)
        rc = RecursiveConfig(max_leaf_qubits=8)
        base = solve_recursive(
            h, config=cfg, recursive_config=rc, seed=21
        )
        # Fail one known leaf job permanently (ids are path-prefixed).
        leaf_job = next(iter(base.leaf_results)) + "/sp0"
        chaos_cfg = SolverConfig(
            grid_resolution=6,
            maxiter=20,
            shots=512,
            fault_injection=FaultInjection(fail_jobs={leaf_job: None}),
        )
        result = solve_recursive(
            h,
            config=chaos_cfg,
            recursive_config=rc,
            seed=21,
            backend=SerialBackend(fault_policy=FaultPolicy()),
        )
        assert result.num_failed_jobs == 1
        assert h.evaluate(result.best_spins) == result.best_value
        assert result.num_circuits_executed == base.num_circuits_executed - 1
        assert list(result.failure_provenance) == [leaf_job.rsplit("/", 1)[0]]
