"""Tests for repro.sim.batched: the stacked statevector path.

The contract the batched backend leans on: same-shape circuits simulated
together produce exactly what simulating each alone produces — including
through the diagonal fast path — and shape mismatches fail loudly instead
of silently mixing amplitudes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import SimulationError
from repro.graphs.generators import barabasi_albert_graph
from repro.ising.hamiltonian import IsingHamiltonian
from repro.qaoa.circuits import build_qaoa_template
from repro.sim.batched import (
    batched_probabilities,
    batched_statevectors,
    circuit_signature,
    group_by_signature,
)
from repro.sim.statevector import probabilities, simulate_statevector


def _qaoa_circuits(num_qubits, batch, seed=0):
    graph = barabasi_albert_graph(num_qubits, 1, seed=3)
    hamiltonian = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=4)
    template = build_qaoa_template(hamiltonian)
    rng = np.random.default_rng(seed)
    return [
        template.bind([rng.uniform(-1, 1)], [rng.uniform(-1, 1)])
        for __ in range(batch)
    ]


class TestBatchedStatevectors:
    @settings(max_examples=10, deadline=None)
    @given(
        num_qubits=st.integers(min_value=2, max_value=6),
        batch=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_matches_per_circuit_simulation(self, num_qubits, batch, seed):
        circuits = _qaoa_circuits(num_qubits, batch, seed=seed)
        stacked = batched_statevectors(circuits)
        for row, circuit in zip(stacked, circuits):
            np.testing.assert_array_equal(row, simulate_statevector(circuit))

    def test_probabilities_match(self):
        circuits = _qaoa_circuits(7, 4)
        stacked = batched_probabilities(circuits)
        for row, circuit in zip(stacked, circuits):
            np.testing.assert_array_equal(row, probabilities(circuit))

    def test_mixed_gate_kinds(self):
        """Diagonal (rz/rzz/cz/z), permutation-free (h/rx) and cx gates."""
        circuits = []
        for theta in (0.3, 1.1, -0.7):
            c = QuantumCircuit(3)
            c.h(0)
            c.h(1)
            c.h(2)
            c.rz(theta, 0)
            c.rzz(2 * theta, 0, 2)
            c.cz(1, 2)
            c.z(1)
            c.rx(theta / 2, 2)
            c.cx(2, 0)
            circuits.append(c)
        stacked = batched_statevectors(circuits)
        for row, circuit in zip(stacked, circuits):
            np.testing.assert_allclose(row, simulate_statevector(circuit))

    def test_bookkeeping_offsets_do_not_misalign(self):
        """Barrier/measure placement differs per item; gates still align."""
        a = QuantumCircuit(2)
        a.h(0)
        a.rz(0.5, 0)
        a.barrier()
        a.measure_all()
        b = QuantumCircuit(2)
        b.h(0)
        b.barrier()
        b.rz(1.3, 0)
        assert circuit_signature(a) == circuit_signature(b)
        stacked = batched_statevectors([a, b])
        np.testing.assert_array_equal(stacked[0], simulate_statevector(a))
        np.testing.assert_array_equal(stacked[1], simulate_statevector(b))

    def test_qubit_order_of_two_qubit_diagonals(self):
        """RZZ(a, b) must equal RZZ(b, a) — the broadcast transpose path."""
        c1 = QuantumCircuit(2)
        c1.h(0)
        c1.rzz(0.9, 0, 1)
        c2 = QuantumCircuit(2)
        c2.h(0)
        c2.rzz(0.9, 1, 0)
        np.testing.assert_allclose(
            batched_statevectors([c1])[0], batched_statevectors([c2])[0]
        )

    def test_empty_batch_rejected(self):
        with pytest.raises(SimulationError):
            batched_statevectors([])

    def test_shape_mismatch_rejected(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.h(1)
        with pytest.raises(SimulationError):
            batched_statevectors([a, b])

    def test_width_mismatch_rejected(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(3)
        b.h(0)
        with pytest.raises(SimulationError):
            batched_statevectors([a, b])

    def test_parametric_rejected(self):
        template = build_qaoa_template(
            IsingHamiltonian(2, quadratic={(0, 1): 1.0})
        )
        with pytest.raises(SimulationError):
            batched_statevectors([template.circuit])


class TestSignatures:
    def test_signature_ignores_measure_and_barrier(self):
        a = QuantumCircuit(2)
        a.h(0)
        a.measure_all()
        b = QuantumCircuit(2)
        b.h(0)
        b.barrier()
        assert circuit_signature(a) == circuit_signature(b)

    def test_signature_ignores_angles(self):
        a = QuantumCircuit(1)
        a.rz(0.1, 0)
        b = QuantumCircuit(1)
        b.rz(2.9, 0)
        assert circuit_signature(a) == circuit_signature(b)

    def test_group_by_signature_partitions_in_order(self):
        small = _qaoa_circuits(4, 2)
        big = _qaoa_circuits(5, 2)
        groups = group_by_signature([small[0], big[0], small[1], big[1]])
        assert sorted(map(sorted, groups.values())) == [[0, 2], [1, 3]]
