"""Golden-file regression tests for two end-to-end solve scenarios.

Instead of loose tolerances, these tests serialize the full scientific
output of a seeded solve — counts, expectations (as exact ``float.hex``
tokens), spins, accounting — and diff it against a stored fixture under
``tests/golden/``. Any refactor that changes a single sampled count or the
last bit of an expectation fails loudly with a field-level diff.

Intentional changes regenerate the fixtures:

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden

and the fixture diff is reviewed like source.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.core import FrozenQubitsSolver, SolverConfig
from repro.core.solver import FrozenQubitsResult
from repro.devices import get_backend
from repro.graphs.generators import barabasi_albert_graph
from repro.ising.hamiltonian import IsingHamiltonian
from repro.planning import ExecutionBudget

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def _hex(value: float) -> str:
    """Exact float token (hex); NaN spelled out (hex() rejects it)."""
    return "nan" if math.isnan(value) else float(value).hex()


def result_to_golden(result: FrozenQubitsResult) -> dict:
    """The full comparable record of a solve, with bit-exact floats."""
    return {
        "frozen_qubits": list(result.frozen_qubits),
        "best_spins": list(result.best_spins),
        "best_value": _hex(result.best_value),
        "ev_ideal": _hex(result.ev_ideal),
        "ev_noisy": _hex(result.ev_noisy),
        "num_circuits_executed": result.num_circuits_executed,
        "edited_circuits": result.edited_circuits,
        "skipped_assignments": list(result.skipped_assignments),
        "outcomes": [
            {
                "index": outcome.subproblem.index,
                "source": outcome.source,
                "assignment": list(outcome.subproblem.assignment),
                "best_spins": list(outcome.best_spins),
                "best_value": _hex(outcome.best_value),
                "ev_ideal": _hex(outcome.ev_ideal),
                "ev_noisy": _hex(outcome.ev_noisy),
                "decoded_counts": (
                    {str(k): v for k, v in sorted(outcome.decoded_counts.items())}
                    if outcome.decoded_counts is not None
                    else None
                ),
            }
            for outcome in result.outcomes
        ],
    }


def check_golden(name: str, result: FrozenQubitsResult, update: bool) -> None:
    path = os.path.join(GOLDEN_DIR, f"{name}.json")
    actual = result_to_golden(result)
    if update:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(actual, handle, indent=2, sort_keys=True)
            handle.write("\n")
        pytest.skip(f"golden fixture {name}.json rewritten")
    assert os.path.exists(path), (
        f"missing golden fixture {path}; generate it with --update-golden"
    )
    with open(path, encoding="utf-8") as handle:
        expected = json.load(handle)
    # Field-by-field first, so a mismatch names the offending key instead
    # of dumping two whole documents.
    for key in expected:
        assert actual.get(key) == expected[key], f"golden mismatch in {key!r}"
    assert actual == expected


def test_golden_frozenqubits_device_solve(update_golden):
    """Scenario 1: m=2 FrozenQubits solve on a noisy device, mirrors on.

    Pinned to the legacy Nelder-Mead optimizer
    (``analytic_gradients=False``): this fixture predates the gradient
    training engine and must stay byte-identical.
    """
    graph = barabasi_albert_graph(8, attachment=1, seed=21)
    problem = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=22)
    solver = FrozenQubitsSolver(
        num_frozen=2,
        config=SolverConfig(
            grid_resolution=4, maxiter=6, shots=512, analytic_gradients=False
        ),
        seed=2023,
    )
    result = solver.solve(problem, get_backend("montreal"))
    check_golden("frozenqubits_device_m2", result, update_golden)


def test_golden_budgeted_solve_with_fallback(update_golden):
    """Scenario 2: budget-capped fan-out with classical fallback coverage.

    Pinned to the legacy scalar annealer (``vectorized_annealer=False``):
    this fixture predates the batched engine and must stay byte-identical
    — it is the proof that the legacy path still reproduces historical
    results flip-for-flip.
    """
    graph = barabasi_albert_graph(9, attachment=2, seed=23)
    problem = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=24)
    solver = FrozenQubitsSolver(
        num_frozen=3,
        config=SolverConfig(
            grid_resolution=3,
            maxiter=4,
            shots=256,
            vectorized_annealer=False,
            analytic_gradients=False,
        ),
        seed=2024,
        budget=ExecutionBudget(max_circuits=2),
        warm_start=False,
    )
    result = solver.solve(problem, get_backend("montreal"))
    assert result.skipped_assignments  # the scenario must exercise fallback
    check_golden("budgeted_fallback_m3", result, update_golden)


def test_golden_budgeted_solve_vectorized_annealer(update_golden):
    """Scenario 3: the same budgeted solve on the batched annealing engine.

    Same problem and seed as scenario 2 with the default
    ``vectorized_annealer=True`` — pins the vectorized probes and the
    batched classical fallback bit-for-bit, and records replica
    provenance for every covered cell.
    """
    graph = barabasi_albert_graph(9, attachment=2, seed=23)
    problem = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=24)
    solver = FrozenQubitsSolver(
        num_frozen=3,
        config=SolverConfig(
            grid_resolution=3, maxiter=4, shots=256, analytic_gradients=False
        ),
        seed=2024,
        budget=ExecutionBudget(max_circuits=2),
        warm_start=False,
    )
    result = solver.solve(problem, get_backend("montreal"))
    assert result.skipped_assignments
    # Every classical cell carries its fallback's replica provenance.
    classical = [o for o in result.outcomes if o.source == "classical"]
    assert classical and all(o.fallback is not None for o in classical)
    assert set(result.fallback_provenance) == {
        o.subproblem.index for o in classical
    }
    check_golden("budgeted_fallback_m3_vectorized", result, update_golden)


def test_golden_gradient_trained_p2_solve(update_golden):
    """Scenario 4: p=2 device-mode solve trained with analytic gradients.

    The default engine stack — adjoint value-and-grad kernel feeding
    L-BFGS-B refinement — on a depth-2 circuit. Pins the gradient
    training path end to end: one flipped sample or a last-bit drift in
    the converged angles fails the diff.
    """
    graph = barabasi_albert_graph(8, attachment=1, seed=21)
    problem = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=22)
    solver = FrozenQubitsSolver(
        num_frozen=2,
        config=SolverConfig(
            num_layers=2, grid_resolution=4, maxiter=8, shots=512
        ),
        seed=2023,
    )
    result = solver.solve(problem, get_backend("montreal"))
    assert result.num_gradient_evaluations > 0
    check_golden("gradient_trained_p2_m2", result, update_golden)


def test_golden_proxy_trained_p2_solve(update_golden):
    """Scenario 5: p=2 device-mode solve on the proxy-landscape engine.

    ``proxy_training=True`` on a dense instance whose sub-problems clear
    the proxy-size floor: canonical-frame sparsified training, parameter
    transfer, and the hybrid-seeded refinement, pinned end to end. The
    dense BA(m=3) problem is required — freezing a BA tree leaves
    near-edgeless siblings and the proxy planner would opt out of every
    cell, silently degrading this fixture to the direct path.
    """
    graph = barabasi_albert_graph(12, attachment=3, seed=25)
    problem = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=26)
    solver = FrozenQubitsSolver(
        num_frozen=2,
        config=SolverConfig(
            num_layers=2,
            grid_resolution=4,
            maxiter=30,
            shots=512,
            proxy_training=True,
        ),
        seed=2025,
    )
    result = solver.solve(problem, get_backend("montreal"))
    assert result.num_proxy_trained > 0
    assert result.num_proxy_evaluations > 0
    check_golden("proxy_trained_p2_m2", result, update_golden)
