"""Behavioral tests for the two-tier :class:`repro.cache.SolveCache`.

Covers the LRU memory tier (eviction order, promotion on hit), the disk
tier (JSON and NPZ payload round-trips, corruption tolerance, cross-
instance sharing), the stats counters, and the memoization wrappers'
bit-exactness guarantees.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.cache import (
    SolveCache,
    cache_from_dir,
    cached_brute_force,
    cached_simulated_annealing,
    cached_transpile,
    resolve_cache,
    set_default_cache,
    stats_delta,
    summarize_stats,
)
from repro.cache.memo import params_payload, params_rebuild
from repro.devices import get_backend
from repro.exceptions import CacheError
from repro.ising.annealer import simulated_annealing
from repro.ising.bruteforce import brute_force_minimum
from repro.ising.hamiltonian import IsingHamiltonian
from repro.qaoa.circuits import build_qaoa_template


@pytest.fixture
def problem() -> IsingHamiltonian:
    return IsingHamiltonian(
        4,
        linear={0: 0.5},
        quadratic={(0, 1): 1.0, (1, 2): -1.0, (2, 3): 1.0},
    )


# ----------------------------------------------------------------------
# Memory tier
# ----------------------------------------------------------------------
def test_lru_evicts_least_recently_used():
    cache = SolveCache(capacity=2)
    cache.put("kind", "a", 1)
    cache.put("kind", "b", 2)
    assert cache.get("kind", "a") == 1  # touch "a" => "b" is now LRU
    cache.put("kind", "c", 3)
    assert len(cache) == 2
    assert cache.get("kind", "b") is None
    assert cache.get("kind", "a") == 1
    assert cache.get("kind", "c") == 3
    stats = cache.stats_snapshot()["kind"]
    assert stats["evictions"] == 1


def test_eviction_is_tallied_under_the_evicted_kind():
    cache = SolveCache(capacity=2)
    cache.put("transpiled", "t", object())
    cache.put("params", "a", 1)
    cache.put("params", "b", 2)  # evicts the transpiled entry
    stats = cache.stats_snapshot()
    assert stats["transpiled"]["evictions"] == 1
    assert stats["params"]["evictions"] == 0


def test_capacity_must_be_positive():
    with pytest.raises(CacheError):
        SolveCache(capacity=0)


def test_stats_and_delta_accounting():
    cache = SolveCache()
    before = cache.stats_snapshot()
    assert cache.get("params", "missing") is None
    cache.put("params", "k", (1.0,))
    assert cache.get("params", "k") == (1.0,)
    delta = stats_delta(before, cache.stats_snapshot())
    assert delta["params"]["misses"] == 1
    assert delta["params"]["stores"] == 1
    assert delta["params"]["memory_hits"] == 1
    assert "1 hit" in summarize_stats(delta)
    assert summarize_stats({}) == "cache: no activity"


def test_resolve_cache_forms():
    cache = SolveCache()
    assert resolve_cache(cache) is cache
    assert resolve_cache(False) is None
    set_default_cache(None)
    try:
        assert resolve_cache(None) is None
        created = resolve_cache(True)
        assert isinstance(created, SolveCache)
        assert resolve_cache(True) is created  # sticky session default
        set_default_cache(cache)
        assert resolve_cache(None) is cache
    finally:
        set_default_cache(None)
    with pytest.raises(CacheError):
        resolve_cache("yes")  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Disk tier
# ----------------------------------------------------------------------
def test_disk_round_trip_json_payload(tmp_path):
    cache = SolveCache(cache_dir=str(tmp_path))
    params = ((0.123456789012345,), (-0.987654321098765,))
    cache.put("params", "deadbeef", params, payload=params_payload(params))
    # A fresh cache over the same directory must rebuild bit-exactly.
    fresh = SolveCache(cache_dir=str(tmp_path))
    rebuilt = fresh.get("params", "deadbeef", rebuild=params_rebuild)
    assert rebuilt == params
    assert fresh.stats_snapshot()["params"]["disk_hits"] == 1
    # The rebuilt entry was promoted into memory.
    assert fresh.get("params", "deadbeef", rebuild=params_rebuild) == params
    assert fresh.stats_snapshot()["params"]["memory_hits"] == 1


def test_disk_skipped_without_rebuild(tmp_path):
    cache = SolveCache(cache_dir=str(tmp_path))
    cache.put("params", "k", 1, payload={"v": 1})
    fresh = SolveCache(cache_dir=str(tmp_path))
    assert fresh.get("params", "k") is None  # no rebuild => no disk read


def test_corrupt_disk_payload_is_a_miss(tmp_path):
    cache = SolveCache(cache_dir=str(tmp_path))
    params = ((0.5,), (0.25,))
    cache.put("params", "cafe", params, payload=params_payload(params))
    json_path = os.path.join(str(tmp_path), "params", "ca", "cafe.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        handle.write("{ not json")
    fresh = SolveCache(cache_dir=str(tmp_path))
    assert fresh.get("params", "cafe", rebuild=params_rebuild) is None
    # A structurally-valid payload that the rebuilder rejects is also a miss.
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump({"wrong": "shape"}, handle)
    assert fresh.get("params", "cafe", rebuild=params_rebuild) is None


def test_truncated_json_is_counted_corrupt_and_unlinked(tmp_path):
    cache = SolveCache(cache_dir=str(tmp_path))
    params = ((0.5,), (0.25,))
    cache.put("params", "cafe", params, payload=params_payload(params))
    json_path = os.path.join(str(tmp_path), "params", "ca", "cafe.json")
    with open(json_path, encoding="utf-8") as handle:
        text = handle.read()
    with open(json_path, "w", encoding="utf-8") as handle:
        handle.write(text[: len(text) // 2])  # torn mid-write
    fresh = SolveCache(cache_dir=str(tmp_path))
    assert fresh.get("params", "cafe", rebuild=params_rebuild) is None
    stats = fresh.stats_snapshot()["params"]
    assert stats["corrupt"] == 1
    assert stats["misses"] == 1
    # The bad artifact was evicted, so the next read is a clean miss that
    # does not re-parse and re-fail.
    assert not os.path.exists(json_path)
    assert fresh.get("params", "cafe", rebuild=params_rebuild) is None
    stats = fresh.stats_snapshot()["params"]
    assert stats["corrupt"] == 1
    assert stats["misses"] == 2


def test_torn_npz_sidecar_is_counted_corrupt_and_unlinked(tmp_path, problem):
    cache = SolveCache(cache_dir=str(tmp_path))
    cached_brute_force(problem, cache=cache)
    stem = os.path.join(str(tmp_path), "bruteforce")
    npz_paths = [
        os.path.join(root, name)
        for root, _, files in os.walk(stem)
        for name in files
        if name.endswith(".npz")
    ]
    assert len(npz_paths) == 1
    npz_path = npz_paths[0]
    json_path = npz_path[: -len(".npz")] + ".json"
    with open(npz_path, "rb") as handle:
        blob = handle.read()
    with open(npz_path, "wb") as handle:
        handle.write(blob[: len(blob) // 2])  # torn mid-write
    fresh = SolveCache(cache_dir=str(tmp_path))
    assert cached_brute_force(problem, cache=fresh) == brute_force_minimum(
        problem
    )
    stats = fresh.stats_snapshot()["bruteforce"]
    assert stats["corrupt"] == 1
    # Both halves of the artifact are gone; recomputation re-recorded it.
    # (cached_brute_force re-put the value, rewriting both files.)
    assert stats["stores"] == 1
    assert os.path.exists(json_path) and os.path.exists(npz_path)
    another = SolveCache(cache_dir=str(tmp_path))
    assert cached_brute_force(problem, cache=another) == brute_force_minimum(
        problem
    )
    assert another.stats_snapshot()["bruteforce"]["disk_hits"] == 1


def test_missing_npz_sidecar_is_corrupt(tmp_path, problem):
    cache = SolveCache(cache_dir=str(tmp_path))
    cached_brute_force(problem, cache=cache)
    stem = os.path.join(str(tmp_path), "bruteforce")
    for root, _, files in os.walk(stem):
        for name in files:
            if name.endswith(".npz"):
                os.unlink(os.path.join(root, name))
    fresh = SolveCache(cache_dir=str(tmp_path))
    assert cached_brute_force(problem, cache=fresh) == brute_force_minimum(
        problem
    )
    stats = fresh.stats_snapshot()["bruteforce"]
    assert stats["corrupt"] == 1


def test_npz_array_payload_round_trip(tmp_path, problem):
    cache = SolveCache(cache_dir=str(tmp_path))
    expected = brute_force_minimum(problem)
    first = cached_brute_force(problem, cache=cache)
    assert first == expected
    stem = os.path.join(str(tmp_path), "bruteforce")
    npz_files = [
        name
        for _, _, files in os.walk(stem)
        for name in files
        if name.endswith(".npz")
    ]
    assert npz_files, "spins should persist as an NPZ sidecar"
    fresh = SolveCache(cache_dir=str(tmp_path))
    rebuilt = cached_brute_force(problem, cache=fresh)
    assert rebuilt == expected
    assert fresh.stats_snapshot()["bruteforce"]["disk_hits"] == 1


def test_cache_from_dir_expands_user(tmp_path, monkeypatch):
    monkeypatch.setenv("HOME", str(tmp_path))
    cache = cache_from_dir("~/fq-cache")
    assert cache.cache_dir == str(tmp_path / "fq-cache")


# ----------------------------------------------------------------------
# Memoization wrappers
# ----------------------------------------------------------------------
def test_cached_annealing_matches_uncached_bit_for_bit(problem):
    cache = SolveCache()
    direct = simulated_annealing(problem, num_sweeps=40, num_restarts=2, seed=9)
    memoized = cached_simulated_annealing(
        problem, num_sweeps=40, num_restarts=2, seed=9, cache=cache
    )
    assert memoized == direct
    replay = cached_simulated_annealing(
        problem, num_sweeps=40, num_restarts=2, seed=9, cache=cache
    )
    assert replay == direct
    stats = cache.stats_snapshot()["anneal"]
    assert stats["memory_hits"] == 1 and stats["stores"] == 1
    # A different seed is a different key — never a false hit.
    other = cached_simulated_annealing(
        problem, num_sweeps=40, num_restarts=2, seed=10, cache=cache
    )
    assert other == simulated_annealing(
        problem, num_sweeps=40, num_restarts=2, seed=10
    )


def test_cached_annealing_bypasses_generator_seeds(problem):
    cache = SolveCache()
    rng = np.random.default_rng(3)
    cached_simulated_annealing(problem, seed=rng, cache=cache)
    assert "anneal" not in cache.stats_snapshot()
    # The caller's stream advanced exactly as the uncached call would.
    reference_rng = np.random.default_rng(3)
    simulated_annealing(problem, seed=reference_rng)
    assert rng.integers(0, 2**31) == reference_rng.integers(0, 2**31)


def test_cached_transpile_round_trips_through_disk(tmp_path, problem):
    device = get_backend("montreal")
    template = build_qaoa_template(problem, linear_support=[0, 1, 2, 3])
    cache = SolveCache(cache_dir=str(tmp_path))
    compiled, profile = cached_transpile(
        template.circuit, device, cache=cache
    )
    again, profile_again = cached_transpile(
        template.circuit, device, cache=cache
    )
    assert again is compiled and profile_again is profile
    fresh = SolveCache(cache_dir=str(tmp_path))
    rebuilt, rebuilt_profile = cached_transpile(
        template.circuit, device, cache=fresh
    )
    assert fresh.stats_snapshot()["transpiled"]["disk_hits"] == 1
    # Full instruction-stream identity (names, qubits, angles incl. the
    # symbolic coefficients by parameter name, tags) via the fingerprint.
    from repro.cache import circuit_fingerprint

    assert circuit_fingerprint(rebuilt.circuit) == circuit_fingerprint(
        compiled.circuit
    )
    assert rebuilt.cx_count == compiled.cx_count
    assert rebuilt.swap_count == compiled.swap_count
    assert rebuilt.depth == compiled.depth
    assert rebuilt.duration_ns == compiled.duration_ns
    assert rebuilt.final_layout.to_dict() == compiled.final_layout.to_dict()
    assert rebuilt_profile.fidelity == profile.fidelity
    assert rebuilt_profile.readout == profile.readout
    assert rebuilt_profile.measured_wires == profile.measured_wires
    # Symbolic angles survived: the edit surface is intact by tag.
    assert set(rebuilt.parametric_instruction_indices()) == set(
        compiled.parametric_instruction_indices()
    )


def test_cached_wrappers_are_transparent_without_a_cache(problem):
    assert cached_brute_force(problem) == brute_force_minimum(problem)
    assert cached_simulated_annealing(
        problem, num_sweeps=30, num_restarts=1, seed=4
    ) == simulated_annealing(problem, num_sweeps=30, num_restarts=1, seed=4)


# ---------------------------------------------------------------------------
# Sharded layout, TTL, and size-bounded retention
# ---------------------------------------------------------------------------
def test_default_layout_is_the_historical_one(tmp_path):
    cache = SolveCache(cache_dir=str(tmp_path))
    cache.put("params", "abcdef123", {"v": 1}, payload={"v": 1})
    assert (tmp_path / "params" / "ab" / "abcdef123.json").exists()


def test_custom_sharding_fans_keys_across_levels(tmp_path):
    cache = SolveCache(cache_dir=str(tmp_path), shard_depth=2, shard_width=1)
    cache.put("params", "abcdef123", {"v": 1}, payload={"v": 1})
    assert (tmp_path / "params" / "a" / "b" / "abcdef123.json").exists()
    fresh = SolveCache(cache_dir=str(tmp_path), shard_depth=2, shard_width=1)
    assert fresh.get("params", "abcdef123", rebuild=lambda p: p) == {"v": 1}


def test_shard_depth_zero_is_flat(tmp_path):
    cache = SolveCache(cache_dir=str(tmp_path), shard_depth=0)
    cache.put("params", "abcdef123", {"v": 1}, payload={"v": 1})
    assert (tmp_path / "params" / "abcdef123.json").exists()


def test_layout_metadata_governs_later_openers(tmp_path):
    # First writer pins a 2x1 layout; a second open with different (even
    # default) constructor arguments must adopt the pinned layout and
    # find the artifact.
    writer = SolveCache(cache_dir=str(tmp_path), shard_depth=2, shard_width=1)
    writer.put("params", "abcdef123", {"v": 7}, payload={"v": 7})
    assert (tmp_path / "cache_layout.json").exists()
    reader = SolveCache(cache_dir=str(tmp_path))  # defaults: 1 x 2
    assert reader.shard_depth == 2
    assert reader.shard_width == 1
    assert reader.get("params", "abcdef123", rebuild=lambda p: p) == {"v": 7}


def test_torn_layout_metadata_is_ignored_and_healed(tmp_path):
    (tmp_path / "cache_layout.json").write_text('{"shard_dep')  # torn
    cache = SolveCache(cache_dir=str(tmp_path), shard_depth=3, shard_width=1)
    assert cache.shard_depth == 3  # torn file did not override
    cache.put("params", "abcdef123", {"v": 1}, payload={"v": 1})
    healed = json.loads((tmp_path / "cache_layout.json").read_text())
    assert healed["shard_depth"] == 3
    assert healed["shard_width"] == 1


def test_invalid_retention_arguments_raise(tmp_path):
    with pytest.raises(CacheError):
        SolveCache(cache_dir=str(tmp_path), shard_depth=-1)
    with pytest.raises(CacheError):
        SolveCache(cache_dir=str(tmp_path), shard_width=0)
    with pytest.raises(CacheError):
        SolveCache(cache_dir=str(tmp_path), ttl_seconds=0)
    with pytest.raises(CacheError):
        SolveCache(cache_dir=str(tmp_path), max_disk_bytes=0)


def test_ttl_expires_old_artifacts_as_counted_misses(tmp_path):
    cache = SolveCache(cache_dir=str(tmp_path), ttl_seconds=3600)
    cache.put("params", "oldkey", {"v": 1}, payload={"v": 1})
    json_path = tmp_path / "params" / "ol" / "oldkey.json"
    assert json_path.exists()
    ancient = os.stat(json_path).st_mtime - 7200
    os.utime(json_path, (ancient, ancient))
    fresh = SolveCache(cache_dir=str(tmp_path), ttl_seconds=3600)
    assert fresh.get("params", "oldkey", rebuild=lambda p: p) is None
    assert fresh.stats_snapshot()["params"]["expired"] == 1
    assert not json_path.exists(), "expired artifact must be unlinked"
    # The next read is a clean miss, not another expiry.
    assert fresh.get("params", "oldkey", rebuild=lambda p: p) is None
    assert fresh.stats_snapshot()["params"]["expired"] == 1


def test_fresh_artifacts_survive_ttl(tmp_path):
    cache = SolveCache(cache_dir=str(tmp_path), ttl_seconds=3600)
    cache.put("params", "newkey", {"v": 2}, payload={"v": 2})
    fresh = SolveCache(cache_dir=str(tmp_path), ttl_seconds=3600)
    assert fresh.get("params", "newkey", rebuild=lambda p: p) == {"v": 2}


def test_disk_budget_evicts_oldest_first(tmp_path):
    payload = {"blob": "x" * 512}
    cache = SolveCache(cache_dir=str(tmp_path), max_disk_bytes=2048)
    for index in range(8):
        key = f"key{index:02d}x"
        cache.put("params", key, payload, payload=dict(payload))
        # Distinct mtimes so "oldest" is well defined on coarse clocks.
        json_path, _ = cache._paths("params", key)
        stamp = os.stat(json_path).st_mtime - (8 - index)
        os.utime(json_path, (stamp, stamp))
    assert cache.disk_usage() <= 2048
    stats = cache.stats_snapshot()["params"]
    assert stats["disk_evictions"] > 0
    # The newest artifact must have survived the sweeps.
    newest, _ = cache._paths("params", "key07x")
    assert os.path.exists(newest)


def test_disk_usage_reports_zero_for_memory_only():
    assert SolveCache().disk_usage() == 0
