"""Tests for repro.planning and the planned solve path.

Covers the budget model, the adaptive planner, assignment triage, the
budgeted top-k fan-out with classical fallback (the decoded result must
still partition the full state-space at m >= 3, mixed pruned/unpruned),
cross-sibling warm starts (fewer optimizer evaluations, equivalent
answers, backend-independent), and the session-default plumbing the CLI
flags use.
"""

import threading

import numpy as np
import pytest

from repro.backend import ProcessPoolBackend, SerialBackend
from repro.core import FrozenQubitsSolver, SolverConfig, solve_many
from repro.core.partition import executed_subproblems, partition_problem
from repro.core.solver import run_qaoa_instance
from repro.devices import get_backend
from repro.devices.ibm import _build_backend
from repro.exceptions import ReproError, SolverError
from repro.exceptions import QAOAError
from repro.graphs.generators import barabasi_albert_graph, star_graph
from repro.ising import IsingHamiltonian, brute_force_minimum
from repro.planning import (
    ExecutionBudget,
    FreezePlan,
    FreezePlanner,
    PlanningDefaults,
    offset_lower_bound,
    plan_freeze,
    rank_assignments,
    set_default_planning,
)
from repro.analysis.tradeoff import knee_under_budget, tradeoff_curve
from repro.qaoa.optimizer import optimize_qaoa
from repro.utils.bitstrings import bits_to_spins, int_to_bits

FAST = SolverConfig(shots=512, grid_resolution=6, maxiter=20)


@pytest.fixture
def ba10_hamiltonian() -> IsingHamiltonian:
    graph = barabasi_albert_graph(10, attachment=1, seed=5)
    return IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=6)


class TestExecutionBudget:
    def test_unlimited_by_default(self):
        budget = ExecutionBudget()
        assert budget.unlimited
        assert budget.circuit_cap(shots_per_circuit=1024) is None

    def test_tightest_cap_wins(self):
        budget = ExecutionBudget(max_circuits=8, max_shots=2048)
        assert budget.circuit_cap(shots_per_circuit=1024) == 2
        assert budget.circuit_cap() == 8  # shot limit can't bind without shots

    def test_seconds_proxy(self):
        budget = ExecutionBudget(max_seconds=1.0)
        assert budget.circuit_cap(seconds_per_circuit=0.3) == 3

    def test_cap_never_below_one(self):
        budget = ExecutionBudget(max_shots=10)
        assert budget.circuit_cap(shots_per_circuit=1024) == 1

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_circuits": 0}, {"max_shots": 0}, {"max_seconds": 0.0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(SolverError):
            ExecutionBudget(**kwargs)


class TestFreezePlan:
    def test_inconsistent_plan_rejected(self):
        with pytest.raises(SolverError):
            FreezePlan(num_frozen=2, hotspots=(0,))

    def test_bad_max_executed_rejected(self):
        with pytest.raises(SolverError):
            FreezePlan(num_frozen=1, hotspots=(0,), max_executed=0)

    def test_describe_mentions_depth_and_notes(self):
        plan = FreezePlan(
            num_frozen=1, hotspots=(3,), notes=("because reasons",)
        )
        text = plan.describe()
        assert "m=1" in text and "because reasons" in text


class TestFreezePlanner:
    def test_star_plan_freezes_hub(self):
        h = IsingHamiltonian.from_graph(star_graph(10))
        plan = FreezePlanner().plan(h)
        assert plan.num_frozen >= 1
        assert plan.hotspots[0] == 0  # the hub

    def test_budget_caps_executed_circuits(self, ba10_hamiltonian):
        plan = FreezePlanner(shots=512).plan(
            ba10_hamiltonian, budget=ExecutionBudget(max_circuits=2)
        )
        assert any("budget" in note for note in plan.notes)
        # Either the depth already fits 2 circuits, or the plan prescribes
        # a ranked top-2 with classical fallback for the rest.
        fan_out = 2 ** max(plan.num_frozen - 1, 0)  # symmetric => pruned
        if fan_out > 2:
            assert plan.max_executed == 2
            assert any("covered classically" in note for note in plan.notes)
        else:
            assert plan.max_executed is None

    def test_top_k_pruning_reachable_within_stretch(self, ba10_hamiltonian):
        """A quality-chosen depth that overflows the cap by <= the stretch
        factor is kept, with the overflow handled by top-k pruning."""
        plan = FreezePlanner(
            shots=512, plateau_threshold=0.0, max_frozen=4
        ).plan(ba10_hamiltonian, budget=ExecutionBudget(max_circuits=2))
        assert plan.num_frozen >= 3  # 2**(m-1) = 4 cells > cap of 2
        assert plan.max_executed == 2
        result = FrozenQubitsSolver(plan=plan, config=FAST, seed=2).solve(
            ba10_hamiltonian
        )
        assert result.num_circuits_executed == 2
        assert result.skipped_assignments  # fallback actually exercised

    def test_stretch_clamps_depth_with_accurate_note(self, ba10_hamiltonian):
        """Beyond the stretch the depth is clamped — and the clamp note
        appears only when the clamp actually happened."""
        clamped = FreezePlanner(
            shots=512, plateau_threshold=0.0, max_frozen=6, prune_stretch=1
        ).plan(ba10_hamiltonian, budget=ExecutionBudget(max_circuits=2))
        assert 2 ** max(clamped.num_frozen - 1, 0) <= 2
        assert any("clamped" in note for note in clamped.notes)
        unclamped = FreezePlanner(shots=512).plan(
            ba10_hamiltonian, budget=ExecutionBudget(max_circuits=64)
        )
        assert not any("clamped" in note for note in unclamped.notes)

    def test_prune_stretch_validation(self):
        with pytest.raises(SolverError):
            FreezePlanner(prune_stretch=0)

    def test_swap_aware_policy_plans_with_device(self, ba10_hamiltonian):
        """The cost-model path must reuse the device-aware hotspot set
        instead of re-selecting blind (which would crash swap_aware)."""
        plan = FreezePlanner(hotspot_policy="swap_aware", max_frozen=3).plan(
            ba10_hamiltonian, device=get_backend("montreal")
        )
        assert plan.policy == "swap_aware"
        assert len(plan.hotspots) == plan.num_frozen

    def test_random_policy_plan_deterministic_by_seed(self, ba10_hamiltonian):
        device = get_backend("montreal")
        planner = FreezePlanner(hotspot_policy="random", max_frozen=3)
        a = planner.plan(ba10_hamiltonian, device=device, seed=11)
        b = planner.plan(ba10_hamiltonian, device=device, seed=11)
        assert a.hotspots == b.hotspots and a.num_frozen == b.num_frozen

    def test_seconds_budget_binds_in_direct_solver_path(self, ba10_hamiltonian):
        """A max_seconds-only budget must cap the fan-out through the
        solver exactly as it does through the planner."""
        from repro.planning.budget import estimated_seconds_per_circuit

        per_circuit = estimated_seconds_per_circuit(
            ba10_hamiltonian, FAST.shots
        )
        solver = FrozenQubitsSolver(
            num_frozen=3,
            prune_symmetric=False,
            config=FAST,
            seed=30,
            budget=ExecutionBudget(max_seconds=2.5 * per_circuit),
        )
        result = solver.solve(ba10_hamiltonian)
        assert result.num_circuits_executed == 2
        assert len(result.skipped_assignments) == 6

    def test_device_plan_consults_cost_model(self, ba10_hamiltonian):
        plan = FreezePlanner(max_frozen=3).plan(
            ba10_hamiltonian, device=get_backend("montreal")
        )
        assert plan.cost_reports  # evidence retained for inspection
        assert plan.num_frozen <= 3
        assert any("cost model" in note for note in plan.notes)

    def test_plan_is_inspectable_and_reusable(self, ba10_hamiltonian):
        plan = plan_freeze(ba10_hamiltonian, budget=ExecutionBudget(max_circuits=1))
        result = FrozenQubitsSolver(plan=plan, config=FAST, seed=0).solve(
            ba10_hamiltonian
        )
        assert result.plan is plan
        assert result.num_circuits_executed <= 1

    def test_warm_start_disabled_for_single_cell(self):
        h = IsingHamiltonian.from_graph(star_graph(6))
        plan = FreezePlanner(warm_start=True).plan(
            h, budget=ExecutionBudget(max_circuits=1)
        )
        solver = FrozenQubitsSolver(plan=plan, config=FAST, seed=1)
        prepared = solver.prepare_jobs(h)
        assert all(job.warm_start_from is None for job in prepared.jobs)


class TestRankAssignments:
    def test_ranks_cover_all_cells_and_bound_holds(self, ba10_hamiltonian):
        parts = partition_problem(
            ba10_hamiltonian, [0, 1, 2], prune_symmetric=False
        )
        ranks = rank_assignments(parts, seed=7)
        assert sorted(r.index for r in ranks) == list(range(8))
        for rank in ranks:
            assert rank.lower_bound <= rank.probe_value + 1e-9
        # Best-first: probe values ascend.
        probes = [r.probe_value for r in ranks]
        assert probes == sorted(probes)

    def test_deterministic_by_seed(self, ba10_hamiltonian):
        parts = partition_problem(ba10_hamiltonian, [0, 1])
        a = rank_assignments(executed_subproblems(parts), seed=9)
        b = rank_assignments(executed_subproblems(parts), seed=9)
        assert a == b

    def test_lower_bound_is_a_true_bound(self, ba10_hamiltonian):
        parts = partition_problem(ba10_hamiltonian, [0])
        for sp in parts:
            exact = brute_force_minimum(sp.hamiltonian).value
            assert offset_lower_bound(sp) <= exact + 1e-9


class TestKneeUnderBudget:
    def test_budget_stops_walk(self):
        curve = tradeoff_curve([100.0, 60.0, 30.0, 10.0])
        assert knee_under_budget(curve, threshold=0.05) == 3
        assert knee_under_budget(curve, max_cost=2, threshold=0.05) == 1
        assert knee_under_budget(curve, max_cost=4, threshold=0.05) == 2

    def test_plateau_stops_walk_sequentially(self):
        # m=1 gains nothing; the big m=2 gain must NOT be reachable.
        curve = tradeoff_curve([100.0, 99.9, 10.0])
        assert knee_under_budget(curve, threshold=0.05) == 0

    def test_validation(self):
        curve = tradeoff_curve([1.0, 0.5])
        with pytest.raises(ReproError):
            knee_under_budget(curve, max_cost=0)
        with pytest.raises(ReproError):
            knee_under_budget(curve, threshold=-0.1)


class TestBudgetedSolve:
    """Budget pruning beyond symmetry: top-k execution, classical fallback,
    and a decoded result that still partitions the full space at m >= 3."""

    def _assert_full_partition(self, result, hamiltonian, m):
        assert len(result.outcomes) == 2**m
        seen = set()
        for outcome in result.outcomes:
            sp = outcome.subproblem
            seen.add(sp.assignment)
            # Decode round-trip: the frozen qubits of every best assignment
            # carry exactly the cell's substituted values.
            for qubit, value in zip(sp.spec.frozen_qubits, sp.assignment):
                assert outcome.best_spins[qubit] == value
            assert hamiltonian.evaluate(outcome.best_spins) == pytest.approx(
                outcome.best_value
            )
        assert len(seen) == 2**m  # every assignment covered exactly once

    def test_budgeted_m3_unpruned_fanout(self, ba10_hamiltonian):
        solver = FrozenQubitsSolver(
            num_frozen=3,
            prune_symmetric=False,
            config=FAST,
            seed=13,
            budget=ExecutionBudget(max_circuits=3),
        )
        result = solver.solve(ba10_hamiltonian)
        assert result.num_circuits_executed == 3
        assert len(result.skipped_assignments) == 5
        self._assert_full_partition(result, ba10_hamiltonian, 3)
        sources = {o.source for o in result.outcomes}
        assert sources == {"quantum", "classical"}
        # Skipped cells are reported and are exactly the classical ones.
        classical = {
            o.subproblem.index
            for o in result.outcomes
            if o.source == "classical"
        }
        assert classical == set(result.skipped_assignments)
        # Expectations come from the quantum cells only, and stay finite.
        assert np.isfinite(result.ev_ideal) and np.isfinite(result.ev_noisy)
        # The classical fallback still recovers the global optimum on a
        # problem this small.
        exact = brute_force_minimum(ba10_hamiltonian).value
        assert result.best_value == pytest.approx(exact)

    def test_budgeted_m3_mixed_with_mirrors(self, ba10_hamiltonian):
        """Symmetric parent at m=3: 4 executed cells, budget 2 => quantum,
        classical, AND mirror outcomes coexist; mirrors of classical twins
        decode correctly."""
        solver = FrozenQubitsSolver(
            num_frozen=3,
            config=FAST,
            seed=14,
            budget=ExecutionBudget(max_circuits=2),
        )
        result = solver.solve(ba10_hamiltonian)
        assert result.num_circuits_executed == 2
        assert len(result.skipped_assignments) == 2
        self._assert_full_partition(result, ba10_hamiltonian, 3)
        by_source = {
            source: [o for o in result.outcomes if o.source == source]
            for source in ("quantum", "classical", "mirror")
        }
        assert len(by_source["quantum"]) == 2
        assert len(by_source["classical"]) == 2
        assert len(by_source["mirror"]) == 4
        # A mirror of a classical cell inherits NaN expectations; a mirror
        # of a quantum cell inherits real ones.
        for mirror in by_source["mirror"]:
            twin = result.outcomes[mirror.subproblem.mirror_of]
            assert mirror.best_value == pytest.approx(
                result.hamiltonian.evaluate(
                    tuple(-s for s in twin.best_spins)
                )
            )
            assert np.isnan(mirror.ev_ideal) == np.isnan(twin.ev_ideal)

    def test_budget_of_one_keeps_best_ranked_cell(self, ba10_hamiltonian):
        solver = FrozenQubitsSolver(
            num_frozen=2,
            prune_symmetric=False,
            config=FAST,
            seed=15,
            budget=ExecutionBudget(max_circuits=1),
        )
        result = solver.solve(ba10_hamiltonian)
        assert result.num_circuits_executed == 1
        assert len(result.skipped_assignments) == 3
        assert sum(1 for o in result.outcomes if o.source == "quantum") == 1

    def test_decoded_counts_respect_frozen_bits_under_budget(
        self, ba10_hamiltonian
    ):
        solver = FrozenQubitsSolver(
            num_frozen=3,
            prune_symmetric=False,
            config=FAST,
            seed=16,
            budget=ExecutionBudget(max_circuits=4),
        )
        result = solver.solve(ba10_hamiltonian, device=get_backend("montreal"))
        n = ba10_hamiltonian.num_qubits
        sampled = 0
        for outcome in result.outcomes:
            if outcome.decoded_counts is None:
                continue  # classical fallbacks sample nothing
            sampled += 1
            sp = outcome.subproblem
            for key in outcome.decoded_counts:
                spins = bits_to_spins(int_to_bits(key, n))
                for qubit, value in zip(sp.spec.frozen_qubits, sp.assignment):
                    assert spins[qubit] == value
        assert sampled == 4

    def test_unbudgeted_solve_unchanged(self, ba10_hamiltonian):
        """No plan/budget/warm start => byte-for-byte the legacy behaviour."""
        legacy = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=17)
        result = legacy.solve(ba10_hamiltonian)
        assert result.skipped_assignments == ()
        assert result.plan is None
        assert result.num_warm_started == 0
        assert all(o.source in ("quantum", "mirror") for o in result.outcomes)


class TestWarmStarts:
    def test_fewer_evaluations_same_answer(self, ba10_hamiltonian):
        cold = FrozenQubitsSolver(
            num_frozen=3, prune_symmetric=False, config=FAST, seed=19
        ).solve(ba10_hamiltonian)
        warm = FrozenQubitsSolver(
            num_frozen=3,
            prune_symmetric=False,
            config=FAST,
            seed=19,
            warm_start=True,
        ).solve(ba10_hamiltonian)
        assert warm.num_warm_started + warm.num_warm_start_rejected == 7
        assert warm.num_optimizer_evaluations < cold.num_optimizer_evaluations
        assert warm.best_value == pytest.approx(cold.best_value)

    def test_explicit_false_overrides_plan(self, ba10_hamiltonian):
        """warm_start=False must win over a plan that enables warm starts
        (only None defers to the plan)."""
        plan = FreezePlan(
            num_frozen=2,
            hotspots=(0, 1),
            warm_start=True,
            prune_symmetric=False,
        )
        solver = FrozenQubitsSolver(
            plan=plan, config=FAST, seed=18, warm_start=False
        )
        prepared = solver.prepare_jobs(ba10_hamiltonian)
        assert not prepared.warm_start
        assert all(job.warm_start_from is None for job in prepared.jobs)

    def test_jobs_carry_metadata_and_representative_leads(
        self, ba10_hamiltonian
    ):
        solver = FrozenQubitsSolver(
            num_frozen=2,
            prune_symmetric=False,
            config=FAST,
            seed=20,
            warm_start=True,
        )
        prepared = solver.prepare_jobs(ba10_hamiltonian)
        assert prepared.warm_start
        representative = prepared.jobs[0]
        assert representative.warm_start_from is None
        for job in prepared.jobs[1:]:
            assert job.warm_start_from == representative.job_id

    def test_serial_process_equivalence_with_warm_start(
        self, ba10_hamiltonian
    ):
        solver_kwargs = dict(
            num_frozen=2,
            prune_symmetric=False,
            config=FAST,
            seed=21,
            warm_start=True,
        )
        serial = FrozenQubitsSolver(**solver_kwargs).solve(
            ba10_hamiltonian, backend=SerialBackend()
        )
        pooled = FrozenQubitsSolver(**solver_kwargs).solve(
            ba10_hamiltonian, backend=ProcessPoolBackend(max_workers=2)
        )
        assert serial.best_spins == pooled.best_spins
        assert serial.best_value == pooled.best_value
        assert serial.ev_noisy == pooled.ev_noisy
        assert (
            serial.num_optimizer_evaluations == pooled.num_optimizer_evaluations
        )

    def test_batched_backend_matches_serial_with_warm_start(
        self, ba10_hamiltonian
    ):
        from repro.backend import BatchedStatevectorBackend

        solver_kwargs = dict(
            num_frozen=3,
            prune_symmetric=False,
            config=FAST,
            seed=22,
            warm_start=True,
        )
        serial = FrozenQubitsSolver(**solver_kwargs).solve(
            ba10_hamiltonian, backend=SerialBackend()
        )
        batched = FrozenQubitsSolver(**solver_kwargs).solve(
            ba10_hamiltonian, backend=BatchedStatevectorBackend()
        )
        assert serial.best_value == pytest.approx(batched.best_value)
        assert serial.num_warm_started == batched.num_warm_started


class TestOptimizerInitialPoint:
    def _quadratic_objective(self, optimum):
        def evaluate(gammas, betas):
            return (gammas[0] - optimum[0]) ** 2 + (betas[0] - optimum[1]) ** 2 - 1.0

        return evaluate

    def test_accepted_transfer_skips_seeding_scan(self):
        result = optimize_qaoa(
            self._quadratic_objective((0.3, 0.2)),
            grid_resolution=12,
            maxiter=40,
            initial_point=((0.29,), (0.21,)),
        )
        assert result.warm_started and not result.warm_start_rejected
        # 2 probe evaluations + Nelder-Mead, far below the 144-point scan.
        assert result.num_evaluations < 100
        assert result.gammas[0] == pytest.approx(0.3, abs=1e-2)

    def test_bad_transfer_falls_back_to_fresh_start(self):
        # Optimum at the origin => the null point is already optimal and
        # any transferred point evaluates worse: fallback must trigger.
        result = optimize_qaoa(
            self._quadratic_objective((0.0, 0.0)),
            grid_resolution=6,
            maxiter=40,
            initial_point=((1.5,), (0.7,)),
        )
        assert result.warm_start_rejected and not result.warm_started
        assert result.value == pytest.approx(-1.0, abs=1e-3)

    def test_wrong_arity_rejected(self):
        with pytest.raises(QAOAError):
            optimize_qaoa(
                self._quadratic_objective((0.0, 0.0)),
                num_layers=1,
                initial_point=((0.1, 0.2), (0.3, 0.4)),
            )

    def test_no_initial_point_identical_to_legacy(self):
        evaluate = self._quadratic_objective((0.3, -0.1))
        a = optimize_qaoa(evaluate, grid_resolution=8, maxiter=30)
        b = optimize_qaoa(evaluate, grid_resolution=8, maxiter=30)
        assert a.gammas == b.gammas and a.num_evaluations == b.num_evaluations
        assert not a.warm_started and not a.warm_start_rejected


class TestSolveManyPlanning:
    def test_budget_and_warm_start_passthrough(self, ba10_hamiltonian):
        results = solve_many(
            [ba10_hamiltonian, ba10_hamiltonian],
            num_frozen=3,
            prune_symmetric=False,
            config=FAST,
            seed=23,
            budget=ExecutionBudget(max_circuits=2),
            warm_start=True,
        )
        for result in results:
            assert result.num_circuits_executed == 2
            assert len(result.skipped_assignments) == 6
            assert result.num_warm_started + result.num_warm_start_rejected == 1

    def test_per_problem_plans(self, ba10_hamiltonian):
        plans = [
            plan_freeze(ba10_hamiltonian, budget=ExecutionBudget(max_circuits=1)),
            None,
        ]
        results = solve_many(
            [ba10_hamiltonian, ba10_hamiltonian],
            num_frozen=1,
            config=FAST,
            seed=24,
            plans=plans,
        )
        assert results[0].plan is plans[0]
        assert results[1].plan is None

    def test_plan_count_mismatch_rejected(self, ba10_hamiltonian):
        with pytest.raises(SolverError):
            solve_many(
                [ba10_hamiltonian],
                plans=[None, None],
                config=FAST,
                seed=25,
            )


class TestSessionDefaults:
    def test_defaults_flow_into_solver(self, ba10_hamiltonian):
        set_default_planning(
            PlanningDefaults(
                budget=ExecutionBudget(max_circuits=1), warm_start=True
            )
        )
        try:
            result = FrozenQubitsSolver(
                num_frozen=2, prune_symmetric=False, config=FAST, seed=26
            ).solve(ba10_hamiltonian)
        finally:
            set_default_planning(None)
        assert result.num_circuits_executed == 1
        assert len(result.skipped_assignments) == 3

    def test_adaptive_default_builds_a_plan(self, ba10_hamiltonian):
        set_default_planning(PlanningDefaults(adaptive=True))
        try:
            result = FrozenQubitsSolver(config=FAST, seed=27).solve(
                ba10_hamiltonian
            )
        finally:
            set_default_planning(None)
        assert result.plan is not None
        assert result.frozen_qubits == list(result.plan.hotspots)

    def test_explicit_args_beat_defaults(self, ba10_hamiltonian):
        set_default_planning(
            PlanningDefaults(budget=ExecutionBudget(max_circuits=1))
        )
        try:
            result = FrozenQubitsSolver(
                num_frozen=2,
                prune_symmetric=False,
                config=FAST,
                seed=28,
                budget=ExecutionBudget(max_circuits=2),
            ).solve(ba10_hamiltonian)
        finally:
            set_default_planning(None)
        assert result.num_circuits_executed == 2


class TestDeviceRegistryThreadSafety:
    def test_concurrent_lookups_converge_on_one_instance(self):
        _build_backend.cache_clear()
        devices = [None] * 16
        barrier = threading.Barrier(8)

        def lookup(slot):
            barrier.wait()
            devices[slot] = get_backend("toronto")
            devices[slot + 8] = get_backend("ibm_toronto")

        threads = [
            threading.Thread(target=lookup, args=(slot,)) for slot in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(device is not None for device in devices)
        # Steady state: one canonical cached instance for both spellings.
        canonical = get_backend("toronto")
        assert get_backend("ibm_toronto") is canonical


class TestBaselineUnaffected:
    def test_plain_qaoa_ignores_planning_defaults(self, ba10_hamiltonian):
        """m=0 baselines run through run_qaoa_instance and must not pick
        up session planning state."""
        set_default_planning(PlanningDefaults(adaptive=True, warm_start=True))
        try:
            run = run_qaoa_instance(ba10_hamiltonian, config=FAST, seed=29)
        finally:
            set_default_planning(None)
        assert not run.optimization.warm_started
