"""Tests for repro.transpile: layout, routing, decomposition, the driver.

The load-bearing checks are *semantic*: routed/decomposed circuits must be
unitarily equivalent (modulo the qubit permutation routing induces) to the
logical circuit, verified through the statevector simulator.
"""

import numpy as np
import pytest

from repro.circuit import Parameter, QuantumCircuit
from repro.devices import (
    Device,
    get_backend,
    grid_device,
    linear_coupling,
    uniform_calibration,
)
from repro.exceptions import TranspileError
from repro.graphs.generators import barabasi_albert_graph, sk_graph
from repro.ising.hamiltonian import IsingHamiltonian
from repro.qaoa.circuits import build_qaoa_template
from repro.sim.statevector import probabilities, simulate_statevector
from repro.transpile import (
    Layout,
    TranspileOptions,
    cancel_adjacent_cx,
    decompose_rzz,
    decompose_swap,
    degree_aware_layout,
    merge_adjacent_rz,
    route,
    translate_to_basis,
    transpile,
    trivial_layout,
)
from repro.transpile.compiler import edit_template


def line_device(num_qubits: int) -> Device:
    coupling = linear_coupling(num_qubits)
    return Device("line", coupling, uniform_calibration(coupling))


def unitary_of(circuit: QuantumCircuit) -> np.ndarray:
    """Dense unitary via column-by-column simulation (small circuits only)."""
    dim = 1 << circuit.num_qubits
    matrix = np.empty((dim, dim), dtype=complex)
    for column in range(dim):
        basis = np.zeros(dim, dtype=complex)
        basis[column] = 1.0
        matrix[:, column] = simulate_statevector(circuit, initial_state=basis)
    return matrix


def assert_equal_up_to_phase(a: np.ndarray, b: np.ndarray) -> None:
    index = np.unravel_index(np.argmax(np.abs(a)), a.shape)
    phase = b[index] / a[index]
    assert np.isclose(abs(phase), 1.0, atol=1e-9)
    assert np.allclose(a * phase, b, atol=1e-9)


class TestLayout:
    def test_trivial_layout(self):
        circuit = QuantumCircuit(3)
        layout = trivial_layout(circuit, line_device(5))
        assert layout.physical(2) == 2
        assert layout.logical(2) == 2
        assert layout.logical(4) is None

    def test_layout_rejects_oversized_circuit(self):
        with pytest.raises(TranspileError):
            trivial_layout(QuantumCircuit(6), line_device(5))

    def test_layout_injective_required(self):
        with pytest.raises(TranspileError):
            Layout({0: 1, 1: 1})

    def test_swap_physical_updates_both_views(self):
        layout = Layout({0: 0, 1: 1}, num_logical=2)
        layout.swap_physical(0, 1)
        assert layout.physical(0) == 1
        assert layout.logical(0) == 1

    def test_swap_physical_with_ancilla(self):
        layout = Layout({0: 0}, num_logical=1)
        layout.swap_physical(0, 3)
        assert layout.physical(0) == 3
        assert layout.logical(0) is None

    def test_degree_aware_places_hub_on_best_connected(self):
        """The hotspot logical qubit should land on a high-degree physical
        qubit of the heavy-hex lattice."""
        graph = barabasi_albert_graph(8, 1, seed=2)
        h = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=3)
        template = build_qaoa_template(h)
        device = get_backend("montreal")
        layout = degree_aware_layout(template.circuit, device)
        hub = graph.max_degree_node()
        assert device.coupling.degree(layout.physical(hub)) == 3

    def test_unplaced_logical_raises(self):
        layout = Layout({0: 0}, num_logical=2)
        with pytest.raises(TranspileError):
            layout.physical(1)


class TestRouting:
    def test_adjacent_gates_need_no_swaps(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        device = line_device(2)
        result = route(circuit, device, trivial_layout(circuit, device))
        assert result.swap_count == 0

    def test_distant_gate_inserts_swaps(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 3)
        device = line_device(4)
        result = route(circuit, device, trivial_layout(circuit, device))
        assert result.swap_count == 2
        # All 2q gates in the routed circuit act on coupled wires.
        for op in result.circuit:
            if op.is_two_qubit:
                assert device.coupling.are_adjacent(*op.qubits)

    def test_final_layout_tracks_movement(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        device = line_device(3)
        result = route(circuit, device, trivial_layout(circuit, device))
        moved = result.final_layout.physical(0)
        assert device.coupling.are_adjacent(moved, result.final_layout.physical(2))

    def test_routing_preserves_semantics_on_line(self):
        """Probability distribution (measured through the final layout)
        matches the ideal all-to-all execution."""
        graph = sk_graph(4)
        h = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=5)
        template = build_qaoa_template(h, measure=False)
        logical = template.bind([0.4], [0.7])
        device = line_device(4)
        routed = route(logical, device, trivial_layout(logical, device))
        ideal = probabilities(logical)
        physical_probs = probabilities(routed.circuit)
        # Push physical outcomes back through the final layout.
        mapped = np.zeros_like(ideal)
        wires = [routed.final_layout.physical(q) for q in range(4)]
        for outcome in range(len(physical_probs)):
            logical_outcome = 0
            for q, wire in enumerate(wires):
                logical_outcome |= ((outcome >> wire) & 1) << q
            mapped[logical_outcome] += physical_probs[outcome]
        assert np.allclose(mapped, ideal, atol=1e-9)

    def test_lookahead_not_worse_on_dense_circuit(self):
        graph = sk_graph(6)
        h = IsingHamiltonian.from_graph(graph, seed=0)
        template = build_qaoa_template(h)
        device = line_device(6)
        layout = trivial_layout(template.circuit, device)
        with_la = route(template.circuit, device, layout, lookahead=True)
        without = route(template.circuit, device, layout, lookahead=False)
        assert with_la.swap_count <= without.swap_count

    def test_oversized_circuit_rejected(self):
        circuit = QuantumCircuit(5)
        device = line_device(3)
        with pytest.raises(TranspileError):
            route(circuit, device, Layout({q: q for q in range(5)}))


class TestDecompose:
    def test_rzz_lowering_unitary(self):
        circuit = QuantumCircuit(2)
        circuit.rzz(0.8, 0, 1)
        lowered = decompose_rzz(circuit)
        assert lowered.count_ops() == {"cx": 2, "rz": 1}
        assert_equal_up_to_phase(unitary_of(circuit), unitary_of(lowered))

    def test_swap_lowering_unitary(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        lowered = decompose_swap(circuit)
        assert lowered.count_ops() == {"cx": 3}
        assert_equal_up_to_phase(unitary_of(circuit), unitary_of(lowered))

    def test_rzz_keeps_symbolic_angle_and_tag(self):
        gamma = Parameter("g")
        circuit = QuantumCircuit(2)
        circuit.rzz(gamma * 2.0, 0, 1, tag="quad:0:1")
        lowered = decompose_rzz(circuit)
        rz_ops = [op for op in lowered if op.name == "rz"]
        assert len(rz_ops) == 1
        assert rz_ops[0].is_parametric
        assert rz_ops[0].tag == "quad:0:1"

    def test_hardware_basis_h(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        lowered = translate_to_basis(circuit)
        assert set(lowered.count_ops()) <= {"rz", "sx", "x", "cx"}
        assert_equal_up_to_phase(unitary_of(circuit), unitary_of(lowered))

    def test_hardware_basis_rx(self):
        circuit = QuantumCircuit(1)
        circuit.rx(1.234, 0)
        lowered = translate_to_basis(circuit)
        assert set(lowered.count_ops()) <= {"rz", "sx", "x", "cx"}
        assert_equal_up_to_phase(unitary_of(circuit), unitary_of(lowered))

    def test_hardware_basis_full_qaoa_layer(self):
        h = IsingHamiltonian(3, quadratic={(0, 1): 1.0, (1, 2): -1.0})
        circuit = build_qaoa_template(h, measure=False).bind([0.3], [0.9])
        lowered = translate_to_basis(decompose_rzz(circuit))
        assert set(lowered.count_ops()) <= {"rz", "sx", "x", "cx"}
        assert_equal_up_to_phase(unitary_of(circuit), unitary_of(lowered))

    def test_unknown_gate_rejected(self):
        circuit = QuantumCircuit(1)
        circuit.y(0)
        with pytest.raises(TranspileError):
            translate_to_basis(circuit)

    def test_cancel_adjacent_cx(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        cleaned = cancel_adjacent_cx(circuit)
        assert len(cleaned) == 0

    def test_cancel_respects_intervening_gate(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.rz(0.5, 1)
        circuit.cx(0, 1)
        cleaned = cancel_adjacent_cx(circuit)
        assert cleaned.cx_count == 2

    def test_cancel_respects_direction(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        cleaned = cancel_adjacent_cx(circuit)
        assert cleaned.cx_count == 2

    def test_merge_adjacent_rz(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.3, 0)
        circuit.rz(0.4, 0)
        merged = merge_adjacent_rz(circuit)
        assert len(merged) == 1
        assert merged.instructions[0].angle == pytest.approx(0.7)

    def test_merge_drops_zero_rotation(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.5, 0)
        circuit.rz(-0.5, 0)
        merged = merge_adjacent_rz(circuit)
        assert len(merged) == 0

    def test_merge_skips_symbolic(self):
        gamma = Parameter("g")
        circuit = QuantumCircuit(1)
        circuit.rz(gamma * 1.0, 0)
        circuit.rz(gamma * 2.0, 0)
        merged = merge_adjacent_rz(circuit)
        assert len(merged) == 2


class TestTranspileDriver:
    def test_metrics_consistency(self):
        graph = barabasi_albert_graph(10, 1, seed=7)
        h = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=8)
        template = build_qaoa_template(h)
        compiled = transpile(template.circuit, get_backend("montreal"))
        assert compiled.pre_cx_count == 2 * h.num_terms
        assert compiled.cx_count == compiled.circuit.cx_count
        assert compiled.cx_count >= compiled.pre_cx_count - 2 * compiled.swap_count
        assert compiled.depth == compiled.circuit.depth()
        assert compiled.duration_ns > 0
        assert compiled.compile_seconds >= 0

    def test_no_swaps_left_after_lowering(self):
        graph = sk_graph(6)
        h = IsingHamiltonian.from_graph(graph, seed=0)
        compiled = transpile(build_qaoa_template(h).circuit, get_backend("montreal"))
        assert "swap" not in compiled.circuit.count_ops()

    def test_hardware_basis_option(self):
        h = IsingHamiltonian(3, quadratic={(0, 1): 1.0})
        compiled = transpile(
            build_qaoa_template(h).circuit,
            get_backend("montreal"),
            TranspileOptions(basis="hardware"),
        )
        names = set(compiled.circuit.count_ops())
        assert names <= {"rz", "sx", "x", "cx", "measure", "barrier"}

    def test_unknown_layout_method(self):
        h = IsingHamiltonian(2, quadratic={(0, 1): 1.0})
        with pytest.raises(TranspileError):
            transpile(
                build_qaoa_template(h).circuit,
                get_backend("montreal"),
                TranspileOptions(layout_method="bogus"),
            )

    def test_grid_blowup_grows_with_size(self):
        """Fig. 3's shape: post/pre CX ratio grows with qubit count for
        fully-connected graphs on a grid."""
        ratios = []
        for size in (4, 8, 12):
            h = IsingHamiltonian.from_graph(sk_graph(size), seed=0)
            side = int(np.ceil(np.sqrt(size)))
            compiled = transpile(
                build_qaoa_template(h).circuit, grid_device(side, side)
            )
            ratios.append(compiled.cx_count / compiled.pre_cx_count)
        assert ratios[-1] > ratios[0]

    def test_template_edit_surface(self):
        h = IsingHamiltonian(
            3, linear=[1.0, 0.0, -1.0], quadratic={(0, 1): 1.0, (1, 2): -1.0}
        )
        template = build_qaoa_template(h, linear_support=[0, 1, 2])
        compiled = transpile(template.circuit, get_backend("montreal"))
        surface = compiled.parametric_instruction_indices()
        assert {"lin:0", "lin:1", "lin:2", "quad:0:1", "quad:1:2"} <= set(surface)

    def test_edit_template_changes_only_angles(self):
        h = IsingHamiltonian(3, linear=[1.0, 0.0, 0.0], quadratic={(0, 1): 1.0})
        template = build_qaoa_template(h, linear_support=[0, 1, 2])
        compiled = transpile(template.circuit, get_backend("montreal"))
        edited = edit_template(compiled, {"lin:1": -2.5})
        assert len(edited) == len(compiled.circuit)
        assert edited.cx_count == compiled.cx_count
        surface = compiled.parametric_instruction_indices()
        index = surface["lin:1"][0]
        assert edited.instructions[index].angle.coefficient == pytest.approx(-5.0)

    def test_edit_template_semantics_match_fresh_compile(self):
        """An edited executable computes the same distribution as a freshly
        built circuit for the sibling Hamiltonian (checked logically)."""
        parent_support = [0, 1, 2]
        sibling_a = IsingHamiltonian(
            3, linear=[1.0, 1.0, 0.0], quadratic={(0, 1): 1.0, (1, 2): -1.0}
        )
        sibling_b = IsingHamiltonian(
            3, linear=[-1.0, 1.0, 2.0], quadratic={(0, 1): 1.0, (1, 2): -1.0}
        )
        template_a = build_qaoa_template(
            sibling_a, linear_support=parent_support, measure=False
        )
        edits = {
            f"lin:{q}": sibling_b.linear_coefficient(q) for q in parent_support
        }
        surface: dict[str, list[int]] = {}
        for idx, op in enumerate(template_a.circuit):
            if op.is_parametric and op.tag:
                surface.setdefault(op.tag, []).append(idx)
        angle_edits = {}
        for tag, coefficient in edits.items():
            for idx in surface[tag]:
                angle_edits[idx] = template_a.circuit.instructions[idx].angle.with_coefficient(
                    2.0 * coefficient
                )
        edited = template_a.circuit.with_edited_angles(angle_edits)
        gammas, betas = [0.37], [0.81]
        values = dict(zip(template_a.gammas, gammas))
        values.update(zip(template_a.betas, betas))
        edited_probs = probabilities(edited.bind(values))
        fresh = build_qaoa_template(
            sibling_b, linear_support=parent_support, measure=False
        )
        fresh_probs = probabilities(fresh.bind(gammas, betas))
        assert np.allclose(edited_probs, fresh_probs, atol=1e-9)

    def test_edit_template_unknown_tag(self):
        h = IsingHamiltonian(2, quadratic={(0, 1): 1.0})
        compiled = transpile(build_qaoa_template(h).circuit, get_backend("montreal"))
        with pytest.raises(TranspileError):
            edit_template(compiled, {"lin:99": 1.0})
