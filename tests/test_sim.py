"""Tests for repro.sim: statevector engine, sampling, expectations, noise.

Includes the validation that pins the scalable depolarizing model to the
faithful trajectory simulator.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.circuit import QuantumCircuit
from repro.exceptions import SimulationError
from repro.graphs.generators import barabasi_albert_graph
from repro.ising.hamiltonian import IsingHamiltonian
from repro.qaoa.circuits import build_qaoa_circuit
from repro.sim import (
    Counts,
    NoiseModel,
    circuit_fidelity,
    expectation_from_counts,
    expectation_from_probabilities,
    noisy_counts,
    noisy_expectation,
    probabilities,
    readout_factors,
    sample_counts,
    simulate_statevector,
    term_expectations_from_probabilities,
    trajectory_counts,
)
from tests.conftest import hamiltonian_strategy


class TestStatevector:
    def test_initial_state_is_zero(self):
        state = simulate_statevector(QuantumCircuit(2))
        assert state[0] == 1.0
        assert np.allclose(state[1:], 0.0)

    def test_x_flips_qubit_lsb_convention(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        state = simulate_statevector(circuit)
        assert state[1] == 1.0  # bit 0 set => index 1

    def test_x_on_high_qubit(self):
        circuit = QuantumCircuit(2)
        circuit.x(1)
        state = simulate_statevector(circuit)
        assert state[2] == 1.0

    def test_bell_state(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        probs = probabilities(circuit)
        assert probs[0] == pytest.approx(0.5)
        assert probs[3] == pytest.approx(0.5)

    def test_cx_direction_matters(self):
        circuit = QuantumCircuit(2)
        circuit.x(1)
        circuit.cx(1, 0)  # control qubit 1 is set => flips qubit 0
        probs = probabilities(circuit)
        assert probs[3] == pytest.approx(1.0)

    def test_norm_preserved_random_circuit(self, rng):
        circuit = QuantumCircuit(4)
        for __ in range(30):
            kind = rng.integers(4)
            q = int(rng.integers(4))
            if kind == 0:
                circuit.h(q)
            elif kind == 1:
                circuit.rz(float(rng.uniform(0, 6)), q)
            elif kind == 2:
                circuit.rx(float(rng.uniform(0, 6)), q)
            else:
                p = int(rng.integers(4))
                if p != q:
                    circuit.cx(q, p)
        probs = probabilities(circuit)
        assert probs.sum() == pytest.approx(1.0)

    def test_symbolic_circuit_rejected(self):
        from repro.circuit import Parameter

        circuit = QuantumCircuit(1)
        circuit.rz(Parameter("g") * 1.0, 0)
        with pytest.raises(SimulationError):
            simulate_statevector(circuit)

    def test_oversized_circuit_rejected(self):
        with pytest.raises(SimulationError):
            simulate_statevector(QuantumCircuit(25))

    def test_custom_initial_state(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        initial = np.array([0.0, 1.0], dtype=complex)
        state = simulate_statevector(circuit, initial_state=initial)
        assert state[0] == pytest.approx(1.0)

    def test_bad_initial_state_shape(self):
        with pytest.raises(SimulationError):
            simulate_statevector(QuantumCircuit(2), initial_state=np.ones(3))


class TestCounts:
    def test_basic_properties(self):
        counts = Counts({0: 10, 3: 30}, num_qubits=2)
        assert counts.total_shots == 40
        assert counts.probability(3) == pytest.approx(0.75)
        assert counts.most_common(1) == [(3, 30)]

    def test_out_of_range_key_rejected(self):
        with pytest.raises(SimulationError):
            Counts({4: 1}, num_qubits=2)

    def test_negative_count_rejected(self):
        with pytest.raises(SimulationError):
            Counts({0: -1}, num_qubits=1)

    def test_zero_counts_dropped(self):
        counts = Counts({0: 0, 1: 5}, num_qubits=1)
        assert 0 not in counts

    def test_spin_items_convention(self):
        counts = Counts({1: 7}, num_qubits=2)  # bit0=1 -> spin -1 on qubit 0
        ((spins, count),) = list(counts.spin_items())
        assert spins == (-1, 1)
        assert count == 7

    def test_flip_all_bits(self):
        counts = Counts({0b01: 4}, num_qubits=2)
        flipped = counts.flip_all_bits()
        assert flipped[0b10] == 4

    def test_merge(self):
        a = Counts({0: 1}, 1)
        b = Counts({0: 2, 1: 3}, 1)
        merged = a.merge(b)
        assert merged[0] == 3 and merged[1] == 3

    def test_merge_width_mismatch(self):
        with pytest.raises(SimulationError):
            Counts({0: 1}, 1).merge(Counts({0: 1}, 2))

    def test_map_outcomes_merges_collisions(self):
        counts = Counts({0: 2, 1: 3}, num_qubits=1)
        merged = counts.map_outcomes(lambda key: 0)
        assert merged[0] == 5

    def test_sample_counts_distribution(self):
        probs = np.array([0.25, 0.75])
        counts = sample_counts(probs, shots=4000, num_qubits=1, seed=0)
        assert counts.total_shots == 4000
        assert counts.probability(1) == pytest.approx(0.75, abs=0.05)

    def test_sample_counts_validates_shape(self):
        with pytest.raises(SimulationError):
            sample_counts(np.ones(3), 10, 1)

    def test_sample_counts_negative_probs(self):
        with pytest.raises(SimulationError):
            sample_counts(np.array([-0.5, 1.5]), 10, 1)


class TestExpectation:
    def test_expectation_from_probabilities_exact(self):
        h = IsingHamiltonian(1, linear=[1.0])
        # |0> -> spin +1 -> EV = 1.
        probs = np.array([1.0, 0.0])
        assert expectation_from_probabilities(h, probs) == pytest.approx(1.0)

    def test_expectation_from_counts_matches_probs(self, small_ba_hamiltonian):
        circuit = build_qaoa_circuit(small_ba_hamiltonian, [0.4], [0.6])
        probs = probabilities(circuit)
        dense = expectation_from_probabilities(small_ba_hamiltonian, probs)
        counts = sample_counts(probs, 200_000, small_ba_hamiltonian.num_qubits, seed=1)
        sampled = expectation_from_counts(small_ba_hamiltonian, counts)
        assert sampled == pytest.approx(dense, abs=0.05)

    def test_counts_width_mismatch(self):
        h = IsingHamiltonian(2, quadratic={(0, 1): 1.0})
        with pytest.raises(SimulationError):
            expectation_from_counts(h, Counts({0: 1}, 3))

    def test_empty_counts_rejected(self):
        h = IsingHamiltonian(1, linear=[1.0])
        with pytest.raises(SimulationError):
            expectation_from_counts(h, Counts({}, 1))

    def test_term_expectations_plus_state(self):
        h = IsingHamiltonian(2, linear=[1.0, 0.0], quadratic={(0, 1): 1.0})
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.h(1)
        probs = probabilities(circuit)
        z, zz = term_expectations_from_probabilities(h, probs)
        assert z[0] == pytest.approx(0.0, abs=1e-12)
        assert zz[(0, 1)] == pytest.approx(0.0, abs=1e-12)

    def test_term_expectations_computational_state(self):
        h = IsingHamiltonian(2, linear=[1.0, 1.0], quadratic={(0, 1): 1.0})
        circuit = QuantumCircuit(2)
        circuit.x(0)  # qubit0 -> |1> -> spin -1
        probs = probabilities(circuit)
        z, zz = term_expectations_from_probabilities(h, probs)
        assert z[0] == pytest.approx(-1.0)
        assert z[1] == pytest.approx(1.0)
        assert zz[(0, 1)] == pytest.approx(-1.0)


class TestNoiseModel:
    def test_gate_error_lookup(self):
        model = NoiseModel.uniform(3, cx_error=0.02, single_qubit_error=0.001)
        from repro.circuit.circuit import Instruction

        assert model.gate_error(Instruction("cx", (0, 1))) == 0.02
        assert model.gate_error(Instruction("h", (1,))) == 0.001
        assert model.gate_error(Instruction("rz", (0,), 0.5)) == 0.0
        assert model.gate_error(Instruction("measure", (0, 1, 2))) == 0.0

    def test_swap_error_compounds(self):
        model = NoiseModel.uniform(2, cx_error=0.1)
        from repro.circuit.circuit import Instruction

        swap_error = model.gate_error(Instruction("swap", (0, 1)))
        assert swap_error == pytest.approx(1 - 0.9**3)

    def test_missing_pair_raises(self):
        model = NoiseModel(
            cx_error={}, single_qubit_error=[0.0], readout_error=[0.0],
            t1_us=[100.0], t2_us=[100.0], durations_ns={},
        )
        from repro.circuit.circuit import Instruction

        with pytest.raises(SimulationError):
            model.gate_error(Instruction("cx", (0, 1)))


class TestDepolarizingModel:
    def test_fidelity_decreases_with_gates(self):
        model = NoiseModel.uniform(2, cx_error=0.05, t1_us=1e9, t2_us=1e9)
        one = QuantumCircuit(2)
        one.cx(0, 1)
        many = QuantumCircuit(2)
        for __ in range(10):
            many.cx(0, 1)
        assert circuit_fidelity(one, model) > circuit_fidelity(many, model)
        assert circuit_fidelity(one, model) == pytest.approx(0.95, abs=1e-6)

    def test_decoherence_lowers_fidelity(self):
        model = NoiseModel.uniform(1, cx_error=0.0, t1_us=1.0, t2_us=1.0)
        circuit = QuantumCircuit(1)
        circuit.rx(0.5, 0)  # 40ns pulse against 1us T1
        fidelity = circuit_fidelity(circuit, model)
        lower_bound = np.exp(-0.04) * np.exp(-0.04 * 0.5)
        assert fidelity == pytest.approx(lower_bound * (1 - 0.0005), rel=1e-3)

    def test_readout_factors_mapping(self):
        model = NoiseModel.uniform(4, readout_error=0.1)
        factors = readout_factors(model, measured_wires=[2, 0])
        assert factors == {0: pytest.approx(0.8), 1: pytest.approx(0.8)}

    def test_noisy_expectation_limits(self):
        h = IsingHamiltonian(2, linear=[1.0, 0.0], quadratic={(0, 1): -1.0}, offset=2.0)
        ideal_z = {0: 0.5}
        ideal_zz = {(0, 1): -0.7}
        clean = noisy_expectation(h, ideal_z, ideal_zz, fidelity=1.0)
        assert clean == pytest.approx(2.0 + 0.5 + 0.7)
        fully_mixed = noisy_expectation(h, ideal_z, ideal_zz, fidelity=0.0)
        assert fully_mixed == pytest.approx(2.0)  # collapses to the offset

    def test_noisy_expectation_readout_attenuation(self):
        h = IsingHamiltonian(2, quadratic={(0, 1): 1.0})
        value = noisy_expectation(
            h, {}, {(0, 1): 1.0}, fidelity=1.0, readout={0: 0.8, 1: 0.5}
        )
        assert value == pytest.approx(0.4)

    def test_noisy_expectation_missing_term(self):
        h = IsingHamiltonian(2, quadratic={(0, 1): 1.0})
        with pytest.raises(SimulationError):
            noisy_expectation(h, {}, {}, fidelity=1.0)

    def test_bad_fidelity_rejected(self):
        h = IsingHamiltonian(1, linear=[1.0])
        with pytest.raises(SimulationError):
            noisy_expectation(h, {0: 1.0}, {}, fidelity=1.5)

    def test_noisy_counts_mixture(self):
        probs = np.array([1.0, 0.0])
        model = NoiseModel.uniform(1, readout_error=0.0)
        counts = noisy_counts(probs, fidelity=0.5, model=model, shots=20000,
                              num_qubits=1, seed=2)
        # Mixture: 0.5 * ideal + 0.5 * uniform => P(0) = 0.75.
        assert counts.probability(0) == pytest.approx(0.75, abs=0.02)

    def test_noisy_counts_readout_flips(self):
        probs = np.array([1.0, 0.0])
        model = NoiseModel.uniform(1, readout_error=0.25)
        counts = noisy_counts(probs, fidelity=1.0, model=model, shots=20000,
                              num_qubits=1, seed=3)
        assert counts.probability(1) == pytest.approx(0.25, abs=0.02)

    def test_flip_probabilities_from_factors(self):
        from repro.sim.depolarizing import flip_probabilities_from_factors

        flips = flip_probabilities_from_factors({0: 1.0, 1: 0.5, 2: 0.0}, 3)
        assert flips[0] == 0.0       # no attenuation => no flips
        assert flips[1] == pytest.approx(0.25)
        assert flips[2] == pytest.approx(0.5)  # fully mixed => coin flip

    def test_flip_factors_reproduce_attenuation(self):
        """Sampling with converted flip probabilities reproduces the
        analytic attenuation of <Z> — the sampling/expectation consistency
        contract."""
        from repro.sim.depolarizing import flip_probabilities_from_factors

        h = IsingHamiltonian(1, linear=[1.0])
        probs = np.array([1.0, 0.0])  # <Z> = +1 ideally
        factor = 0.6
        model = NoiseModel.uniform(1, readout_error=0.0)
        flips = flip_probabilities_from_factors({0: factor}, 1)
        counts = noisy_counts(
            probs, fidelity=1.0, model=model, shots=100_000, num_qubits=1,
            seed=4, flip_probabilities=flips,
        )
        assert expectation_from_counts(h, counts) == pytest.approx(factor, abs=0.01)


class TestTrajectorySimulator:
    def test_noiseless_model_reproduces_ideal(self):
        h = IsingHamiltonian(3, quadratic={(0, 1): 1.0, (1, 2): -1.0})
        circuit = build_qaoa_circuit(h, [0.5], [0.4])
        model = NoiseModel.uniform(
            3, cx_error=0.0, single_qubit_error=0.0, readout_error=0.0,
            t1_us=1e12, t2_us=1e12,
        )
        counts = trajectory_counts(circuit, model, shots=60_000, trajectories=4, seed=4)
        sampled_ev = expectation_from_counts(h, counts)
        exact_ev = expectation_from_probabilities(h, probabilities(circuit))
        assert sampled_ev == pytest.approx(exact_ev, abs=0.05)

    def test_depolarizing_model_validated_by_trajectories(self):
        """The scalable model and the faithful simulator agree on the noisy
        expectation within sampling error (DESIGN.md substitution claim)."""
        graph = barabasi_albert_graph(5, 1, seed=21)
        h = IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=22)
        circuit = build_qaoa_circuit(h, [0.55], [0.45])
        model = NoiseModel.uniform(
            5, cx_error=0.03, single_qubit_error=0.0, readout_error=0.02,
            t1_us=1e9, t2_us=1e9,
        )
        counts = trajectory_counts(
            circuit, model, shots=40_000, trajectories=400, seed=5,
            include_idle_errors=False,
        )
        trajectory_ev = expectation_from_counts(h, counts)
        ideal_probs = probabilities(circuit)
        z, zz = term_expectations_from_probabilities(h, ideal_probs)
        fidelity = circuit_fidelity(circuit, model, include_idle_errors=False)
        model_ev = noisy_expectation(
            h, z, zz, fidelity, readout_factors(model, list(range(5)))
        )
        ideal_ev = expectation_from_probabilities(h, ideal_probs)
        # The two noisy estimates agree far more closely with each other
        # than either does with the ideal value.
        assert abs(trajectory_ev - model_ev) < 0.35 * abs(ideal_ev - model_ev) + 0.15

    def test_readout_errors_applied(self):
        circuit = QuantumCircuit(1)
        model = NoiseModel.uniform(1, cx_error=0.0, single_qubit_error=0.0,
                                   readout_error=0.3, t1_us=1e12, t2_us=1e12)
        counts = trajectory_counts(circuit, model, shots=20_000, trajectories=1, seed=6)
        assert counts.probability(1) == pytest.approx(0.3, abs=0.02)

    def test_trajectories_validated(self):
        circuit = QuantumCircuit(1)
        model = NoiseModel.uniform(1)
        with pytest.raises(SimulationError):
            trajectory_counts(circuit, model, trajectories=0)


@settings(max_examples=15, deadline=None)
@given(hamiltonian=hamiltonian_strategy(max_qubits=5))
def test_uniform_distribution_expectation_is_offset(hamiltonian):
    """Property: under the maximally mixed state every spin term averages to
    zero, so the expectation collapses to the offset — the anchor of the
    depolarizing model."""
    n = hamiltonian.num_qubits
    uniform = np.full(1 << n, 1.0 / (1 << n))
    value = expectation_from_probabilities(hamiltonian, uniform)
    assert value == pytest.approx(hamiltonian.offset, abs=1e-9)
