"""Tests for repro.reduction: Red-QAOA sparsification + proxy training.

The load-bearing invariants: the MST guard never disconnects a connected
instance, the proxy's degree profile stays close to the original's, the
whole reduction is a pure function of (instance, ratio, seed), canonical
framing shares one proxy across relabeled/flipped equivalents, and the
transfer-plus-refine path never lands on a worse optimum than a cold
start given the same full-instance budget.
"""

import dataclasses

import numpy as np
import pytest

from repro.cache import cache_from_dir, ising_fingerprint
from repro.core import FrozenQubitsSolver, SolverConfig
from repro.core.solver import train_qaoa_instance
from repro.devices import get_backend
from repro.graphs.generators import barabasi_albert_graph
from repro.ising import IsingHamiltonian
from repro.reduction import (
    MIN_PROXY_NODES,
    PROXY_MIN_QUBITS,
    PROXY_MIN_TERMS,
    canonical_instance,
    plan_proxy,
    proxy_seed,
    reduce_ising,
)


def _problem(num_qubits=16, attachment=3, seed=17):
    graph = barabasi_albert_graph(num_qubits, attachment=attachment, seed=seed)
    return IsingHamiltonian.from_graph(
        graph, weights="random_pm1", seed=seed + 1
    )


def _components(hamiltonian):
    """Connected components of an instance's coupling graph."""
    parent = list(range(hamiltonian.num_qubits))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i, j in hamiltonian.quadratic:
        parent[find(i)] = find(j)
    return len({find(i) for i in range(hamiltonian.num_qubits)})


class TestReduceIsing:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("attachment", [1, 2, 3])
    def test_mst_guard_preserves_connectivity(self, seed, attachment):
        """Sparsification never disconnects a connected instance."""
        problem = _problem(18, attachment, seed=10 + seed)
        assert _components(problem) == 1
        reduced = reduce_ising(problem, ratio=0.5, seed=seed)
        assert _components(reduced.proxy) == 1

    @pytest.mark.parametrize("seed", [0, 3])
    def test_degree_distribution_approximately_preserved(self, seed):
        problem = _problem(24, 3, seed=20 + seed)
        reduced = reduce_ising(problem, ratio=0.7, seed=seed)
        assert reduced.report.degree_similarity >= 0.5
        # The spectral score exists and is meaningfully positive on a
        # dense-enough instance (Red-QAOA's landscape-preservation proxy).
        assert reduced.report.spectral_similarity > 0.0

    @pytest.mark.parametrize("seed", [0, 5, 11])
    def test_same_seed_same_proxy(self, seed):
        problem = _problem(20, 2, seed=30)
        first = reduce_ising(problem, ratio=0.5, seed=seed)
        second = reduce_ising(problem, ratio=0.5, seed=seed)
        assert ising_fingerprint(first.proxy) == ising_fingerprint(
            second.proxy
        )
        assert first.report == second.report

    def test_different_seed_may_differ_but_stays_valid(self):
        problem = _problem(20, 3, seed=31)
        proxies = {
            ising_fingerprint(reduce_ising(problem, ratio=0.5, seed=s).proxy)
            for s in range(6)
        }
        # Not asserting inequality for every pair — just that each draw
        # still satisfies the structural contract.
        for s in range(6):
            reduced = reduce_ising(problem, ratio=0.5, seed=s)
            assert reduced.proxy.num_qubits < problem.num_qubits
            assert _components(reduced.proxy) == 1
        assert len(proxies) >= 1

    def test_ratio_one_is_identity(self):
        problem = _problem(12, 2, seed=40)
        reduced = reduce_ising(problem, ratio=1.0, seed=0)
        assert reduced.proxy is problem
        assert reduced.report.num_edges_dropped == 0
        assert reduced.report.num_contracted == 0
        assert reduced.report.degree_similarity == 1.0

    def test_report_counts_are_consistent(self):
        problem = _problem(18, 3, seed=41)
        reduced = reduce_ising(problem, ratio=0.5, seed=2)
        report = reduced.report
        assert report.num_qubits == problem.num_qubits
        assert report.num_terms == problem.num_terms
        assert report.num_proxy_qubits == reduced.proxy.num_qubits
        assert report.num_proxy_terms == reduced.proxy.num_terms
        assert (
            report.num_proxy_qubits + report.num_contracted
            == report.num_qubits
        )
        assert report.num_proxy_qubits >= MIN_PROXY_NODES

    def test_tiny_instance_untouched(self):
        tiny = IsingHamiltonian(2, {0: 1.0}, {(0, 1): -1.0})
        reduced = reduce_ising(tiny, ratio=0.3, seed=0)
        assert reduced.proxy is tiny


class TestCanonicalFrame:
    def test_relabeled_instances_share_one_canonical_frame(self):
        problem = _problem(10, 2, seed=50)
        rng = np.random.default_rng(51)
        perm = rng.permutation(problem.num_qubits)
        relabeled = IsingHamiltonian(
            problem.num_qubits,
            {int(perm[i]): float(v) for i, v in enumerate(problem.linear)},
            {
                (min(perm[i], perm[j]), max(perm[i], perm[j])): c
                for (i, j), c in problem.quadratic.items()
            },
            offset=problem.offset,
        )
        canon_a, key_a = canonical_instance(problem)
        canon_b, key_b = canonical_instance(relabeled)
        assert key_a.complete and key_b.complete
        assert key_a.digest == key_b.digest
        assert ising_fingerprint(canon_a) == ising_fingerprint(canon_b)

    def test_mirror_pair_shares_one_canonical_frame(self):
        problem = _problem(10, 2, seed=52)
        mirrored = IsingHamiltonian(
            problem.num_qubits,
            {i: -float(v) for i, v in enumerate(problem.linear)},
            dict(problem.quadratic),
            offset=problem.offset,
        )
        _, key_a = canonical_instance(problem)
        _, key_b = canonical_instance(mirrored)
        assert key_a.digest == key_b.digest

    def test_proxy_seed_is_a_pure_function_of_identity(self):
        assert proxy_seed("ab" * 32) == proxy_seed("ab" * 32)
        assert 0 <= proxy_seed("ff" * 32) < 2**31 - 1


class TestPlanProxy:
    def test_small_instances_opt_out(self):
        config = SolverConfig(proxy_training=True)
        small = _problem(PROXY_MIN_QUBITS - 1, 1, seed=60)
        assert plan_proxy(small, config) is None
        sparse = IsingHamiltonian(
            8, {i: 1.0 for i in range(8)}, {(0, 1): 1.0, (2, 3): -1.0}
        )
        assert sparse.num_terms < PROXY_MIN_TERMS
        assert plan_proxy(sparse, config) is None

    def test_equivalent_instances_share_cache_key(self):
        config = SolverConfig(proxy_training=True, num_layers=2)
        problem = _problem(12, 2, seed=61)
        mirrored = IsingHamiltonian(
            problem.num_qubits,
            {i: -float(v) for i, v in enumerate(problem.linear)},
            dict(problem.quadratic),
            offset=problem.offset,
        )
        spec_a = plan_proxy(problem, config)
        spec_b = plan_proxy(mirrored, config)
        assert spec_a is not None and spec_b is not None
        assert spec_a.cache_key == spec_b.cache_key
        assert spec_a.seed == spec_b.seed
        assert ising_fingerprint(spec_a.hamiltonian) == ising_fingerprint(
            spec_b.hamiltonian
        )

    def test_ratio_changes_cache_key(self):
        problem = _problem(12, 3, seed=62)
        key_a = plan_proxy(
            problem, SolverConfig(proxy_training=True, proxy_ratio=0.5)
        ).cache_key
        key_b = plan_proxy(
            problem, SolverConfig(proxy_training=True, proxy_ratio=0.8)
        ).cache_key
        assert key_a != key_b

    def test_plan_is_deterministic(self):
        config = SolverConfig(proxy_training=True)
        problem = _problem(14, 3, seed=63)
        spec_a = plan_proxy(problem, config)
        spec_b = plan_proxy(problem, config)
        assert spec_a.cache_key == spec_b.cache_key
        assert spec_a.report == spec_b.report
        assert ising_fingerprint(spec_a.hamiltonian) == ising_fingerprint(
            spec_b.hamiltonian
        )


class TestProxyTraining:
    CONFIG = SolverConfig(
        num_layers=2,
        grid_resolution=6,
        maxiter=60,
        shots=256,
        proxy_training=True,
    )

    def test_transfer_refine_beats_cold_start_at_same_budget(self):
        """At matched (here: ~3x larger for cold) full-instance evaluation
        budgets, the proxy-transferred solve must reach an equal-or-better
        EV than cold training — the Red-QAOA claim the engine rests on."""
        problem = _problem(14, 3, seed=72)
        device = get_backend("montreal")
        warm = FrozenQubitsSolver(
            num_frozen=3, prune_symmetric=False, config=self.CONFIG, seed=13
        ).solve(problem, device)
        cold_config = dataclasses.replace(
            self.CONFIG, proxy_training=False, maxiter=8
        )
        cold = FrozenQubitsSolver(
            num_frozen=3, prune_symmetric=False, config=cold_config, seed=13
        ).solve(problem, device)
        # Cold gets strictly more full-instance evaluations than the
        # proxy path spent — and still must not beat it.
        assert cold.num_optimizer_evaluations >= warm.num_optimizer_evaluations
        assert warm.ev_ideal <= cold.ev_ideal + 1e-9
        assert warm.num_proxy_evaluations > 0

    def test_refine_accounting_separates_proxy_from_full(self):
        problem = _problem(12, 3, seed=70)
        proxy = plan_proxy(problem, self.CONFIG)
        assert proxy is not None
        warm = train_qaoa_instance(
            problem, config=self.CONFIG, seed=7, proxy=proxy
        )
        cold_config = dataclasses.replace(
            self.CONFIG,
            proxy_training=False,
            maxiter=self.CONFIG.proxy_refine_maxiter,
        )
        cold = train_qaoa_instance(problem, config=cold_config, seed=7)
        # One hybrid-seeded descent instead of a 4-start multistart:
        # far fewer full-instance evaluations, with the proxy's own
        # evaluations accounted separately.
        assert (
            warm.optimization.num_evaluations
            < cold.optimization.num_evaluations
        )
        assert warm.optimization.num_proxy_evaluations > 0
        assert warm.optimization.proxy_params is not None
        assert cold.optimization.num_proxy_evaluations == 0

    def test_pretrained_proxy_params_skip_proxy_stage(self):
        problem = _problem(12, 3, seed=71)
        proxy = plan_proxy(problem, self.CONFIG)
        trained = train_qaoa_instance(
            problem, config=self.CONFIG, seed=9, proxy=proxy
        )
        adopted_spec = dataclasses.replace(
            proxy, params=trained.optimization.proxy_params
        )
        adopted = train_qaoa_instance(
            problem, config=self.CONFIG, seed=9, proxy=adopted_spec
        )
        assert adopted.optimization.num_proxy_evaluations == 0
        assert adopted.optimization.gammas == trained.optimization.gammas
        assert adopted.optimization.betas == trained.optimization.betas
        assert adopted.optimization.value == trained.optimization.value

    def test_solve_backends_bit_identical_with_proxy_on(self):
        problem = _problem(14, 3, seed=72)
        device = get_backend("montreal")
        results = []
        for backend in ("serial", "process", "batched"):
            solver = FrozenQubitsSolver(
                num_frozen=3,
                prune_symmetric=False,
                config=self.CONFIG,
                seed=13,
            )
            results.append(solver.solve(problem, device, backend=backend))
        first = results[0]
        assert first.num_proxy_evaluations > 0
        assert first.num_proxy_trained > 0
        for other in results[1:]:
            assert other.best_spins == first.best_spins
            assert other.best_value == first.best_value
            assert other.ev_ideal == first.ev_ideal
            assert other.num_proxy_evaluations == first.num_proxy_evaluations
            assert other.num_proxy_trained == first.num_proxy_trained

    def test_cache_hit_skips_proxy_training_bit_identically(self, tmp_path):
        problem = _problem(14, 3, seed=73)
        device = get_backend("montreal")
        cache = cache_from_dir(tmp_path)
        solver = FrozenQubitsSolver(
            num_frozen=3,
            prune_symmetric=False,
            config=self.CONFIG,
            seed=13,
            cache=cache,
        )
        first = solver.solve(problem, device)
        second = solver.solve(problem, device)
        assert first.num_proxy_trained > 0
        assert second.num_proxy_trained == 0
        assert second.num_proxy_evaluations == 0
        assert second.ev_ideal == first.ev_ideal
        assert second.best_value == first.best_value
        assert second.best_spins == first.best_spins

    def test_flag_off_is_the_default(self):
        assert SolverConfig().proxy_training is False
