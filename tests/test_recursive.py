"""Tests for recursive multi-level freezing (repro.recursive)."""

import math

import numpy as np
import pytest

from repro.cache import SolveCache
from repro.core.partition import partition_problem
from repro.core.solver import FrozenQubitsSolver, SolverConfig
from repro.exceptions import RecursiveError
from repro.graphs import barabasi_albert_graph
from repro.ising.bruteforce import brute_force_minimum
from repro.ising.freeze import decode_spins, freeze_qubits
from repro.ising.hamiltonian import IsingHamiltonian, random_pm1_hamiltonian
from repro.planning import ExecutionBudget
from repro.recursive import (
    RecursiveConfig,
    RecursiveResult,
    component_hamiltonians,
    plan_tree,
    solve_recursive,
)
from repro.recursive.tree import _connected_components


def powerlaw_instance(num_nodes, seed):
    graph = barabasi_albert_graph(num_nodes, attachment=1, seed=seed)
    return random_pm1_hamiltonian(graph, seed=seed)


class TestRecursiveConfig:
    def test_defaults_valid(self):
        cfg = RecursiveConfig()
        assert cfg.max_leaf_qubits == 14
        assert cfg.max_frozen_per_level == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_leaf_qubits": 0},
            {"max_frozen_per_level": 0},
            {"max_children": 0},
            {"max_depth": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(RecursiveError):
            RecursiveConfig(**kwargs)


class TestComponents:
    def test_components_partition_the_qubits(self):
        h = powerlaw_instance(30, seed=4)
        sub, _spec = freeze_qubits(h, [0, 1], [1, 1])
        components = _connected_components(sub)
        seen = sorted(q for component in components for q in component)
        assert seen == list(range(sub.num_qubits))

    def test_component_values_sum_to_parent(self):
        # The parent offset rides component 0 only, so evaluating each
        # component at the restriction of any full assignment must sum to
        # the parent's value exactly (integer couplings -> exact floats).
        h = powerlaw_instance(24, seed=9)
        sub, _spec = freeze_qubits(h, [0], [1])
        components = _connected_components(sub)
        assert len(components) > 1
        subs = component_hamiltonians(sub, components)
        rng = np.random.default_rng(3)
        for _ in range(10):
            spins = rng.choice([-1, 1], size=sub.num_qubits)
            total = sum(
                s.evaluate([spins[q] for q in qubits])
                for s, qubits in zip(subs, components)
            )
            assert total == sub.evaluate(spins)


class TestTwoLevelFreezeDecode:
    """Satellite 4: multi-level freeze -> decode -> evaluate is exact."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_two_level_decode_reproduces_energy_exactly(self, seed):
        h = powerlaw_instance(18, seed=seed)
        rng = np.random.default_rng(seed + 100)
        for outer in partition_problem(h, [0, 1], prune_symmetric=False):
            inner_hotspots = [0, 1]
            for inner in partition_problem(
                outer.hamiltonian, inner_hotspots, prune_symmetric=False
            ):
                sub_spins = tuple(
                    rng.choice([-1, 1])
                    for _ in range(inner.hamiltonian.num_qubits)
                )
                # Compose the decode level by level: leaf frame -> outer
                # cell frame -> the original instance's frame.
                mid = decode_spins(inner.spec, inner.assignment, sub_spins)
                full = decode_spins(outer.spec, outer.assignment, mid)
                # Offsets accumulate through both freezes, so the leaf
                # evaluation already IS the full-instance energy — ±1
                # couplings make the floats exact, hence strict equality.
                assert inner.hamiltonian.evaluate(sub_spins) == h.evaluate(full)

    def test_three_level_decode_with_fields(self):
        # Linear terms exercise the offset bookkeeping (h_k terms fold
        # into the offset; neighbour fields shift).
        h = IsingHamiltonian(
            8,
            linear={0: 2.0, 1: -1.0, 3: 1.0, 6: -3.0},
            quadratic={(0, 1): 1.0, (1, 2): -1.0, (2, 3): 1.0,
                       (3, 4): -1.0, (4, 5): 1.0, (5, 6): -1.0,
                       (6, 7): 1.0, (0, 7): -1.0},
            offset=5.0,
        )
        rng = np.random.default_rng(17)
        for a in partition_problem(h, [0], prune_symmetric=False):
            for b in partition_problem(a.hamiltonian, [0], prune_symmetric=False):
                for c in partition_problem(
                    b.hamiltonian, [0], prune_symmetric=False
                ):
                    sub = tuple(
                        rng.choice([-1, 1])
                        for _ in range(c.hamiltonian.num_qubits)
                    )
                    full = decode_spins(
                        a.spec, a.assignment,
                        decode_spins(
                            b.spec, b.assignment,
                            decode_spins(c.spec, c.assignment, sub),
                        ),
                    )
                    assert c.hamiltonian.evaluate(sub) == h.evaluate(full)


class TestPlanTree:
    def test_plan_is_validated_and_deterministic(self):
        h = powerlaw_instance(60, seed=2)
        cfg = RecursiveConfig(max_leaf_qubits=8)
        tree_a = plan_tree(h, config=cfg, seed=5)
        tree_b = plan_tree(h, config=cfg, seed=5)
        tree_a.validate_partition()
        assert [n.path for n in tree_a.nodes()] == [
            n.path for n in tree_b.nodes()
        ]
        assert [n.kind for n in tree_a.nodes()] == [
            n.kind for n in tree_b.nodes()
        ]
        assert tree_a.stats == tree_b.stats

    def test_budget_caps_quantum_leaves(self):
        h = powerlaw_instance(120, seed=6)
        budget = ExecutionBudget(max_circuits=4)
        tree = plan_tree(
            h, config=RecursiveConfig(max_leaf_qubits=6), budget=budget,
            seed=1,
        )
        assert tree.budget_cap == 4
        assert len(tree.leaves()) <= 4
        assert tree.classical_nodes()  # the cut frontier is covered
        for node in tree.classical_nodes():
            assert node.fallback_seed is not None

    def test_max_children_triage_demotes_to_classical(self):
        h = powerlaw_instance(40, seed=8)
        cfg = RecursiveConfig(
            max_leaf_qubits=8, max_frozen_per_level=2, max_children=1,
            split_components=False,
        )
        tree = plan_tree(h, config=cfg, seed=3)
        triaged = [
            n for n in tree.classical_nodes() if n.rank is not None
        ]
        assert triaged  # m=2 -> 2 non-mirror cells, only 1 recurses
        for node in triaged:
            assert node.rank.probe_spins is not None

    def test_describe_renders_every_kind(self):
        h = powerlaw_instance(60, seed=2)
        tree = plan_tree(h, config=RecursiveConfig(max_leaf_qubits=8), seed=5)
        text = tree.describe(max_lines=500)
        assert "freeze @r" in text
        assert "split @" in text
        assert "leaf @" in text


class TestSolveRecursive:
    def test_small_instance_matches_brute_force(self):
        h = powerlaw_instance(12, seed=5)
        result = solve_recursive(
            h, recursive_config=RecursiveConfig(max_leaf_qubits=6), seed=5
        )
        exact = brute_force_minimum(h)
        assert result.best_value == exact.value
        assert h.evaluate(result.best_spins) == result.best_value

    def test_best_value_is_exactly_evaluate_of_best_spins(self):
        h = powerlaw_instance(80, seed=11)
        result = solve_recursive(
            h, recursive_config=RecursiveConfig(max_leaf_qubits=8), seed=11
        )
        assert h.evaluate(result.best_spins) == result.best_value
        assert len(result.best_spins) == h.num_qubits
        assert set(result.best_spins) <= {-1, 1}

    def test_unbudgeted_solve_has_finite_expectations(self):
        h = powerlaw_instance(40, seed=3)
        result = solve_recursive(
            h, recursive_config=RecursiveConfig(max_leaf_qubits=8), seed=3
        )
        assert result.num_classical_nodes == 0
        assert math.isfinite(result.ev_ideal)
        assert math.isfinite(result.ev_noisy)

    def test_dedup_collapses_identical_components(self):
        # Two disconnected copies of the same 5-cycle: their leaves are
        # relabelings of each other, so one executes and one adopts.
        quadratic = {}
        for base in (0, 5):
            for k in range(5):
                i, j = base + k, base + (k + 1) % 5
                quadratic[(min(i, j), max(i, j))] = 1.0
        h = IsingHamiltonian(10, quadratic=quadratic)
        result = solve_recursive(
            h, recursive_config=RecursiveConfig(max_leaf_qubits=6), seed=2
        )
        assert result.num_leaves == 2
        assert result.num_circuits_executed == 1
        assert result.num_deduplicated_leaves == 1
        assert result.dedup_sources  # adopter -> executed twin
        assert h.evaluate(result.best_spins) == result.best_value
        assert result.best_value == brute_force_minimum(h).value

    def test_closed_nodes_are_exact(self):
        # Edgeless instance: the whole tree is one closed node, solved in
        # closed form — no circuits, exact value = offset - sum |h|.
        h = IsingHamiltonian(
            6, linear={0: 2.0, 1: -1.5, 2: 0.5, 4: -3.0}, offset=1.25
        )
        result = solve_recursive(h, seed=0)
        assert result.num_leaves == 0
        assert result.num_circuits_executed == 0
        assert result.best_value == 1.25 - (2.0 + 1.5 + 0.5 + 3.0)
        assert result.ev_ideal == result.best_value
        assert result.ev_noisy == result.best_value

    def test_budgeted_solve_still_partitions_exactly(self):
        h = powerlaw_instance(200, seed=13)
        budget = ExecutionBudget(max_circuits=6)
        result = solve_recursive(
            h,
            recursive_config=RecursiveConfig(max_leaf_qubits=10),
            budget=budget,
            seed=13,
        )
        result.tree.validate_partition()
        assert result.num_leaves <= 6
        assert result.num_classical_nodes > 0
        assert h.evaluate(result.best_spins) == result.best_value
        # Classical coverage carries no circuit, so the mixture EV at the
        # root is honestly NaN rather than a partial-coverage average.
        assert math.isnan(result.ev_ideal)

    def test_same_seed_is_deterministic(self):
        h = powerlaw_instance(60, seed=21)
        kwargs = dict(
            recursive_config=RecursiveConfig(max_leaf_qubits=8), seed=21
        )
        a = solve_recursive(h, **kwargs)
        b = solve_recursive(h, **kwargs)
        assert a.best_spins == b.best_spins
        assert a.best_value == b.best_value
        assert a.ev_ideal == b.ev_ideal

    def test_cache_does_not_change_the_result(self):
        h = powerlaw_instance(40, seed=31)
        cfg = RecursiveConfig(max_leaf_qubits=8)
        cold = solve_recursive(h, recursive_config=cfg, seed=31)
        cache = SolveCache()
        warm1 = solve_recursive(h, recursive_config=cfg, seed=31, cache=cache)
        warm2 = solve_recursive(h, recursive_config=cfg, seed=31, cache=cache)
        assert warm1.best_spins == cold.best_spins
        assert warm2.best_spins == cold.best_spins
        assert warm1.best_value == cold.best_value == warm2.best_value
        assert warm2.cache_stats is not None

    def test_thousand_variable_instance_end_to_end(self):
        # The acceptance scenario: a 1000-variable power-law instance,
        # two to three orders of magnitude beyond the single-level reach,
        # solved under an execution budget with the state-space partition
        # verified structurally and the decode round-trip exact.
        h = powerlaw_instance(1000, seed=7)
        budget = ExecutionBudget(max_circuits=32)
        result = solve_recursive(
            h,
            config=SolverConfig(shots=256),
            recursive_config=RecursiveConfig(max_leaf_qubits=12),
            budget=budget,
            seed=7,
        )
        result.tree.validate_partition()
        assert result.num_leaves <= 32
        assert h.evaluate(result.best_spins) == result.best_value
        # The instance is a tree with ±1 couplings and no fields, so the
        # ground state is -num_edges; the recursive heuristic should land
        # within a few percent of it.
        num_edges = len(h.quadratic)
        assert result.best_value <= -0.97 * num_edges


class TestSolverRouting:
    def test_recursive_flag_routes_solve(self):
        h = powerlaw_instance(30, seed=19)
        solver = FrozenQubitsSolver(
            config=SolverConfig(recursive=True),
            recursive_config=RecursiveConfig(max_leaf_qubits=8),
            seed=19,
        )
        result = solver.solve(h)
        assert isinstance(result, RecursiveResult)
        assert h.evaluate(result.best_spins) == result.best_value

    def test_default_config_stays_single_level(self):
        h = powerlaw_instance(10, seed=23)
        assert SolverConfig().recursive is False
        result = FrozenQubitsSolver(num_frozen=1, seed=23).solve(h)
        assert not isinstance(result, RecursiveResult)
        assert result.frozen_qubits  # the single-level surface
