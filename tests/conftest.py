"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.graphs.generators import barabasi_albert_graph
from repro.ising.hamiltonian import IsingHamiltonian


def pytest_addoption(parser):
    """Register ``--update-golden``: rewrite tests/golden/ fixtures in place.

    Golden tests compare solver output against stored JSON exactly (no
    tolerances). After an *intentional* behavior change, regenerate with
    ``PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden``
    and review the fixture diff like any other code change.
    """
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from the current solver output",
    )


@pytest.fixture
def update_golden(request) -> bool:
    """Whether this run should rewrite golden fixtures instead of diffing."""
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for a test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_ba_hamiltonian() -> IsingHamiltonian:
    """A reproducible 8-qubit BA(d=1) Hamiltonian with ±1 couplings."""
    graph = barabasi_albert_graph(8, attachment=1, seed=42)
    return IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=43)


@pytest.fixture
def paper_fig5_hamiltonian() -> IsingHamiltonian:
    """The 4-qubit example of paper Fig. 5.

    h = 0 everywhere; J edges form the graph used in the freezing worked
    example (z3 coupled to z0, z1, z2; plus the z0-z2 edge).
    """
    return IsingHamiltonian(
        4,
        quadratic={(0, 2): 1.0, (0, 3): 1.0, (1, 3): 1.0, (2, 3): 1.0},
    )


def spins_strategy(num_qubits: int):
    """Hypothesis strategy for a ±1 spin tuple of fixed width."""
    return st.tuples(*([st.sampled_from((-1, 1))] * num_qubits))


def hamiltonian_strategy(max_qubits: int = 6):
    """Hypothesis strategy for small random Ising Hamiltonians."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=1, max_value=max_qubits))
        linear = draw(
            st.lists(
                st.floats(-2, 2, allow_nan=False, allow_infinity=False),
                min_size=n,
                max_size=n,
            )
        )
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        chosen = draw(st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))) if pairs else []
        quadratic = {}
        for pair in chosen:
            quadratic[pair] = draw(
                st.floats(-2, 2, allow_nan=False, allow_infinity=False).filter(
                    lambda x: x != 0.0
                )
            )
        offset = draw(st.floats(-3, 3, allow_nan=False, allow_infinity=False))
        return IsingHamiltonian(n, linear=linear, quadratic=quadratic, offset=offset)

    return build()
