"""Property tests for the symmetry mirror and decode path (Sec. 3.7.2/3.6).

The pruning theorem says the mirror cell's physics is fully recoverable
from its executed twin: ``H_sub^{-a}(z) = H_sub^{a}(-z)``. These
properties pin both halves of that recovery — the Hamiltonian identity
itself, and the counts/spins decode that implements it inside the solver
(``flip_all_bits`` on histograms, negated spins on assignments).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FrozenQubitsSolver, SolverConfig, partition_problem, select_hotspots
from repro.graphs.generators import barabasi_albert_graph
from repro.ising import IsingHamiltonian, brute_force_minimum
from repro.ising.freeze import decode_spins
from repro.utils.bitstrings import bits_to_spins, int_to_bits

FAST = SolverConfig(shots=512, grid_resolution=6, maxiter=20)


def _symmetric_problem(num_qubits, seed):
    graph = barabasi_albert_graph(num_qubits, 1, seed=seed)
    return IsingHamiltonian.from_graph(graph, weights="random_pm1", seed=seed + 1)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_mirror_hamiltonian_is_spin_flipped_twin(data):
    """``H_sub^{-a}(z) == H_sub^{a}(-z)`` for every assignment ``z``."""
    n = data.draw(st.integers(min_value=3, max_value=7))
    seed = data.draw(st.integers(min_value=0, max_value=10_000))
    h = _symmetric_problem(n, seed)
    m = data.draw(st.integers(min_value=1, max_value=min(2, n - 1)))
    parts = partition_problem(h, select_hotspots(h, m))
    mirrors = [sp for sp in parts if sp.is_mirror]
    assert mirrors, "symmetric parent must produce mirror cells"
    for mirror in mirrors:
        twin = parts[mirror.mirror_of]
        spins = data.draw(
            st.tuples(*([st.sampled_from((-1, 1))] * mirror.hamiltonian.num_qubits))
        )
        flipped = tuple(-s for s in spins)
        assert mirror.hamiltonian.evaluate(spins) == pytest.approx(
            twin.hamiltonian.evaluate(flipped)
        )


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_mirrored_decode_matches_parent_cost(data):
    """Decoding negated twin spins into the mirror cell gives the same
    parent cost as evaluating the mirror sub-problem directly."""
    n = data.draw(st.integers(min_value=3, max_value=7))
    seed = data.draw(st.integers(min_value=0, max_value=10_000))
    h = _symmetric_problem(n, seed)
    m = data.draw(st.integers(min_value=1, max_value=min(2, n - 1)))
    parts = partition_problem(h, select_hotspots(h, m))
    for mirror in (sp for sp in parts if sp.is_mirror):
        twin = parts[mirror.mirror_of]
        twin_spins = data.draw(
            st.tuples(*([st.sampled_from((-1, 1))] * twin.hamiltonian.num_qubits))
        )
        mirror_spins = tuple(-s for s in twin_spins)
        # Sub-space cost + parent decode agree on both routes.
        direct = mirror.hamiltonian.evaluate(mirror_spins)
        decoded = decode_spins(mirror.spec, mirror.assignment, mirror_spins)
        assert h.evaluate(decoded) == pytest.approx(direct)
        # The mirrored route: decode the twin's spins, then flip everything.
        twin_decoded = decode_spins(twin.spec, twin.assignment, twin_spins)
        assert tuple(-s for s in twin_decoded) == decoded


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_mirror_minimum_equals_twin_minimum(data):
    """Re-solving the mirror exactly finds the twin's optimum (flipped)."""
    n = data.draw(st.integers(min_value=3, max_value=7))
    seed = data.draw(st.integers(min_value=0, max_value=10_000))
    h = _symmetric_problem(n, seed)
    parts = partition_problem(h, select_hotspots(h, 1))
    mirrors = [sp for sp in parts if sp.is_mirror]
    for mirror in mirrors:
        twin = parts[mirror.mirror_of]
        assert brute_force_minimum(mirror.hamiltonian).value == pytest.approx(
            brute_force_minimum(twin.hamiltonian).value
        )


class TestSolverMirrorOutcomes:
    def test_flipped_counts_evaluate_like_direct_resolve(self):
        """Every decoded mirror outcome carries the parent cost that
        re-solving the mirrored sub-problem would assign it."""
        h = _symmetric_problem(8, seed=5)
        result = FrozenQubitsSolver(num_frozen=2, config=FAST, seed=17).solve(
            h, device=None
        )
        n = h.num_qubits
        for outcome in result.outcomes:
            sp = outcome.subproblem
            if not sp.is_mirror or outcome.decoded_counts is None:
                continue
            twin_outcome = result.outcomes[sp.mirror_of]
            # Histogram identity: the mirror's decoded counts are exactly
            # the twin's, bit-flipped.
            assert dict(outcome.decoded_counts) == dict(
                twin_outcome.decoded_counts.flip_all_bits()
            )
            for key in outcome.decoded_counts:
                spins = bits_to_spins(int_to_bits(key, n))
                # Frozen qubits sit at the mirror's own assignment...
                for qubit, value in zip(sp.spec.frozen_qubits, sp.assignment):
                    assert spins[qubit] == value
                # ...and the parent cost equals the mirror sub-problem's
                # direct evaluation of the kept spins.
                kept = tuple(spins[q] for q in sp.spec.kept_qubits)
                assert h.evaluate(spins) == pytest.approx(
                    sp.hamiltonian.evaluate(kept)
                )

    def test_mirror_best_value_matches_flip(self):
        h = _symmetric_problem(10, seed=9)
        result = FrozenQubitsSolver(num_frozen=1, config=FAST, seed=19).solve(h)
        executed, mirror = result.outcomes
        if executed.subproblem.is_mirror:
            executed, mirror = mirror, executed
        assert mirror.best_spins == tuple(-s for s in executed.best_spins)
        assert mirror.best_value == pytest.approx(
            h.evaluate(tuple(-s for s in executed.best_spins))
        )
