"""Tests for repro.experiments: workloads, figure builders, reporting.

Figure builders run at reduced scale here; the assertions target the
*shape* of each paper result (who wins, direction of trends), which is the
reproduction contract.
"""


import pytest

from repro.exceptions import ReproError
from repro.experiments import ba_suite, regular_suite, render_table, rows_to_csv, sk_suite
from repro.experiments import figures
from repro.experiments.tables import TABLE1_DOMAINS, table3_comparison


class TestWorkloads:
    def test_ba_suite_structure(self):
        suite = ba_suite(sizes=(6, 10), trials=2, seed=0)
        assert len(suite) == 4
        assert {w.num_qubits for w in suite} == {6, 10}
        for w in suite:
            assert w.hamiltonian.has_zero_linear()
            assert all(abs(j) == 1.0 for j in w.hamiltonian.quadratic.values())

    def test_suites_deterministic(self):
        a = ba_suite(sizes=(8,), trials=2, seed=3)
        b = ba_suite(sizes=(8,), trials=2, seed=3)
        assert a[0].hamiltonian == b[0].hamiltonian

    def test_distinct_trials_differ(self):
        suite = ba_suite(sizes=(10,), trials=2, seed=4)
        assert suite[0].hamiltonian != suite[1].hamiltonian

    def test_regular_suite_validates_sizes(self):
        with pytest.raises(ReproError):
            regular_suite(sizes=(5,))

    def test_sk_suite_complete_graphs(self):
        suite = sk_suite(sizes=(5,), trials=1)
        w = suite[0]
        assert w.hamiltonian.num_terms == 10

    def test_trials_guard(self):
        with pytest.raises(ReproError):
            ba_suite(trials=0)


class TestReporting:
    def test_render_table_alignment(self):
        rows = [{"a": 1, "bb": 0.5}, {"a": 22, "bb": 1.25e-7}]
        text = render_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = render_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_render_table_guards(self):
        with pytest.raises(ReproError):
            render_table([])
        with pytest.raises(ReproError):
            render_table([{"a": 1}], columns=["zz"])

    def test_csv_roundtrip(self, tmp_path):
        rows = [{"x": 1, "y": 2.5}, {"x": 3, "y": 4.5}]
        path = str(tmp_path / "rows.csv")
        rows_to_csv(rows, path)
        with open(path) as handle:
            content = handle.read().strip().splitlines()
        assert content[0] == "x,y"
        assert len(content) == 3


class TestFigureBuilders:
    def test_fig01_hotspot_ratio_near_ten(self):
        rows = figures.figure_01_powerlaw(num_airports=300, seed=1)
        assert 5.0 <= rows[0]["top10_over_mean"] <= 15.0

    def test_fig03_blowup_increases(self):
        rows = figures.figure_03_swap_blowup(sizes=(4, 8, 12))
        blowups = [row["blowup"] for row in rows]
        assert blowups[-1] > blowups[0]
        assert all(row["post_cx"] >= row["pre_cx"] for row in rows)

    def test_fig07_fq_reduces_cx_and_depth(self):
        rows = figures.figure_07_cnot_depth(sizes=(8, 12), trials=2, seed=2)
        for row in rows:
            assert row["fq1_cx"] < row["baseline_cx"]
            assert row["fq2_cx"] <= row["fq1_cx"]
            assert row["fq1_depth"] < row["baseline_depth"]

    def test_fig08_fq_improves_arg(self):
        rows = figures.figure_08_arg_powerlaw(sizes=(8, 12), trials=2, seed=3)
        for row in rows:
            assert row["fq1_arg"] < row["baseline_arg"]
            assert row["fq2_arg"] < row["baseline_arg"]

    def test_fig09_tradeoff_monotone_cost(self):
        rows = figures.figure_09_tradeoff(
            num_qubits=10, max_frozen=3, attachments=(1,), seed=4
        )
        costs = [row["quantum_cost"] for row in rows]
        assert costs == sorted(costs)
        assert rows[0]["relative_arg"] == pytest.approx(1.0)
        assert rows[-1]["relative_cx"] < 1.0

    def test_fig12_fq_landscape_sharper(self):
        rows = figures.figure_12_landscape(num_qubits=10, resolution=10, seed=5)
        by_label = {row["which"]: row for row in rows}
        assert by_label["fq1"]["ar_contrast"] > by_label["baseline"]["ar_contrast"]
        assert by_label["fq1"]["fidelity"] > by_label["baseline"]["fidelity"]

    def test_fig14_swap_reduction_dominates(self):
        rows = figures.figure_14_cnot_reduction(num_qubits=60, max_frozen=4, seed=6)
        assert len(rows) == 4
        total = [row["total_reduction_frac"] for row in rows]
        assert all(b >= a - 0.02 for a, b in zip(total, total[1:]))
        # Sec. 6.1: most of the reduction comes from SWAP elimination.
        assert rows[-1]["swap_share_of_reduction"] > 0.5

    def test_fig15_relative_metrics_decrease(self):
        rows = figures.figure_15_relative_cx_depth(
            num_qubits=50, max_frozen=4, attachments=(1,), seed=7
        )
        cx = [row["relative_cx"] for row in rows]
        assert cx[-1] < 1.0
        assert cx[-1] <= cx[0] + 1e-9

    def test_fig16_eps_improves_with_m(self):
        rows = figures.figure_16_eps(
            num_qubits=50, max_frozen=4, attachments=(1,), seed=8
        )
        eps_log = [row["relative_eps_log10"] for row in rows]
        assert all(v >= -1e-9 for v in eps_log)
        assert eps_log[-1] > eps_log[0]

    def test_fig17_editing_cheaper_than_compiling(self):
        rows = figures.figure_17_compile_time(num_qubits=50, max_frozen=3, seed=9)
        for row in rows:
            assert row["relative_compile_time"] < 1.5
            assert row["edit_relative_parallel"] < row["relative_compile_time"]

    def test_fig18_runtime_ordering(self):
        rows = figures.figure_18_runtime()
        assert len(rows) == 4
        by_model = {row["execution_model"]: row for row in rows}
        batched = by_model["Batched+Shared [IBMQ]"]
        sequential = by_model["Sequential+Shared [Azure]"]
        # Batching keeps FQ(m=10) within a small factor of the baseline...
        assert batched["fq10_h"] < 20 * batched["baseline_h"]
        # ...while sequential access makes it far slower.
        assert sequential["fq10_h"] > 50 * sequential["baseline_h"]
        # m=1 with pruning costs no extra circuits at all.
        assert batched["fq1_h"] == pytest.approx(batched["baseline_h"])


class TestTables:
    def test_table1_has_all_domains(self):
        domains = {row["domain"] for row in TABLE1_DOMAINS}
        assert domains == {"Transportation", "Biology", "Finance and Economics"}
        assert len(TABLE1_DOMAINS) == 6

    def test_table3_contrast(self):
        rows = table3_comparison(num_qubits=24, cuts=2)
        cutqc, frozen = rows
        assert cutqc["design"] == "CutQC"
        assert frozen["subcircuit_runs"] < cutqc["subcircuit_runs"]
        assert frozen["postprocess_ops"] < cutqc["postprocess_ops"]
